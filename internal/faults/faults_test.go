package faults

import (
	"strings"
	"testing"

	"hpcsched/internal/sim"
)

func TestParseEmpty(t *testing.T) {
	for _, s := range []string{"", "  ", "none"} {
		spec, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !spec.Empty() {
			t.Fatalf("Parse(%q) not empty: %+v", s, spec)
		}
	}
}

func TestParseDefaultsAndOverrides(t *testing.T) {
	spec := MustParse("slow:n=3,factor=0.25,dur=2s;stall;loss:core=1;storm:daemons=4;mpidelay:extra=1ms")
	if len(spec.Slowdowns) != 1 || spec.Slowdowns[0].Count != 3 ||
		spec.Slowdowns[0].Factor != 0.25 || spec.Slowdowns[0].Dur != 2*sim.Second ||
		spec.Slowdowns[0].By != 60*sim.Second {
		t.Fatalf("slowdowns = %+v", spec.Slowdowns)
	}
	if len(spec.Stalls) != 1 || spec.Stalls[0].Dur != 250*sim.Millisecond {
		t.Fatalf("stalls = %+v", spec.Stalls)
	}
	if len(spec.CoreLoss) != 1 || spec.CoreLoss[0].Core != 1 {
		t.Fatalf("core loss = %+v", spec.CoreLoss)
	}
	if len(spec.Storms) != 1 || spec.Storms[0].Daemons != 4 || spec.Storms[0].Duty != 0.25 {
		t.Fatalf("storms = %+v", spec.Storms)
	}
	if len(spec.MPIDelays) != 1 || spec.MPIDelays[0].Extra != sim.Millisecond {
		t.Fatalf("mpi delays = %+v", spec.MPIDelays)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"quake:n=1",         // unknown kind
		"slow:bogus=3",      // unknown key
		"slow:factor=1.5",   // factor out of (0,1]
		"slow:factor=zero",  // malformed number
		"storm:duty=1.0",    // duty out of (0,1)
		"slow:dur=-5s",      // negative duration
		"slow:factor",       // malformed pair
		"stall:dur=5parsec", // bad duration unit
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	spec := MustParse("slow:n=4;stall:n=2;loss;storm:n=2;mpidelay:n=3")
	a := Compile(spec, 42, 4)
	for i := 0; i < 10; i++ {
		b := Compile(spec, 42, 4)
		if a.Format() != b.Format() {
			t.Fatalf("same (spec, seed) compiled two timelines:\n%s\n--- vs ---\n%s",
				a.Format(), b.Format())
		}
	}
	c := Compile(spec, 43, 4)
	if a.Format() == c.Format() {
		t.Fatal("different seeds produced an identical fault timeline")
	}
}

func TestCompileZeroFaultIsEmpty(t *testing.T) {
	sc := Compile(Spec{}, 42, 4)
	if !sc.Empty() {
		t.Fatalf("zero spec compiled to %d actions", len(sc.Actions))
	}
	if sc.Format() != "(no faults)" {
		t.Fatalf("empty format = %q", sc.Format())
	}
	if inj := Install(nil, nil, sc); inj != nil {
		t.Fatal("installing an empty schedule returned a live injector")
	}
	var nilSchedule *Schedule
	if !nilSchedule.Empty() {
		t.Fatal("nil schedule not Empty")
	}
}

func TestCompileActionShape(t *testing.T) {
	spec := MustParse("slow:n=2,by=10s;mpidelay:n=1,by=10s")
	sc := Compile(spec, 7, 4)
	if len(sc.Actions) != 6 { // 2 slow pairs + 1 delay pair
		t.Fatalf("got %d actions, want 6:\n%s", len(sc.Actions), sc.Format())
	}
	// Sorted by time, and every onset precedes its recovery.
	on := map[ActionKind]int{}
	for i, a := range sc.Actions {
		if i > 0 && a.At < sc.Actions[i-1].At {
			t.Fatalf("actions out of order:\n%s", sc.Format())
		}
		switch a.Kind {
		case ActSlowOn, ActMPIDelayOn:
			on[a.Kind]++
		case ActSlowOff:
			if on[ActSlowOn] == 0 {
				t.Fatalf("recovery before onset:\n%s", sc.Format())
			}
			on[ActSlowOn]--
		case ActMPIDelayOff:
			if on[ActMPIDelayOn] == 0 {
				t.Fatalf("recovery before onset:\n%s", sc.Format())
			}
			on[ActMPIDelayOn]--
		}
		if a.CPU >= 4 {
			t.Fatalf("action targets CPU %d on a 4-CPU machine", a.CPU)
		}
	}
	if !strings.Contains(sc.Format(), "slow-on") {
		t.Fatalf("format lost the action kinds:\n%s", sc.Format())
	}
}

func TestCompileRespectsPinnedLoss(t *testing.T) {
	spec := Spec{CoreLoss: []CoreLossSpec{{Count: 1, Core: 1, At: 5 * sim.Second}}}
	sc := Compile(spec, 99, 4)
	if len(sc.Actions) != 1 {
		t.Fatalf("actions = %d, want 1", len(sc.Actions))
	}
	a := sc.Actions[0]
	if a.Kind != ActCoreLoss || a.CPU != 1 || a.At != 5*sim.Second {
		t.Fatalf("pinned loss compiled to %+v", a)
	}
}

func TestParseHetero(t *testing.T) {
	spec := MustParse("hetero")
	if len(spec.Hetero) != 1 || spec.Hetero[0].Spread != 0.3 || spec.Hetero[0].Scales != nil {
		t.Fatalf("default hetero = %+v", spec.Hetero)
	}
	spec = MustParse("hetero:spread=0.45")
	if spec.Hetero[0].Spread != 0.45 {
		t.Fatalf("spread = %v", spec.Hetero[0].Spread)
	}
	spec = MustParse("hetero:scales=1/0.8/0.6")
	want := []float64{1, 0.8, 0.6}
	got := spec.Hetero[0].Scales
	if len(got) != len(want) {
		t.Fatalf("scales = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scales = %v, want %v", got, want)
		}
	}
	for _, s := range []string{
		"hetero:spread=1.0",  // spread out of [0,1)
		"hetero:spread=-0.1", // negative spread
		"hetero:scales=0/1",  // scale out of (0,1]
		"hetero:scales=1.5",  // scale above 1
		"hetero:scales=1/x",  // malformed scale
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestCompileHeteroExplicitScales(t *testing.T) {
	sc := Compile(MustParse("hetero:scales=1/0.5"), 1, 4)
	// The profile repeats across contexts; exact 1.0 scales are skipped,
	// so only cpu1 and cpu3 get actions.
	if len(sc.Actions) != 2 {
		t.Fatalf("actions:\n%s", sc.Format())
	}
	for i, a := range sc.Actions {
		if a.Kind != ActHetero || a.At != 0 || a.Factor != 0.5 || a.CPU != 2*i+1 {
			t.Fatalf("action %d = %+v", i, a)
		}
	}
}

func TestCompileHeteroSpreadDraws(t *testing.T) {
	sc := Compile(MustParse("hetero:spread=0.5"), 9, 4)
	if len(sc.Actions) == 0 {
		t.Fatal("no hetero actions drawn")
	}
	for _, a := range sc.Actions {
		if a.Kind != ActHetero || a.At != 0 {
			t.Fatalf("action = %+v", a)
		}
		if a.Factor < 0.5 || a.Factor >= 1 {
			t.Fatalf("factor %v outside [0.5, 1)", a.Factor)
		}
	}
}

// An explicit-scales hetero clause draws nothing from the RNG stream the
// other fault kinds use, so adding one leaves a pre-existing spec's
// transient timeline frozen. (Spread-based hetero does draw — but the
// hetero draws come first, so specs without any hetero clause are
// untouched either way.)
func TestCompileHeteroPreservesLegacyStreams(t *testing.T) {
	legacy := Compile(MustParse("slow:n=2,by=10s;storm:n=1,by=10s;mpidelay:n=1,by=10s"), 42, 4)
	mixed := Compile(MustParse("hetero:scales=1/0.7/0.9/0.6;slow:n=2,by=10s;storm:n=1,by=10s;mpidelay:n=1,by=10s"), 42, 4)
	var rest []string
	for _, a := range mixed.Actions {
		if a.Kind != ActHetero {
			rest = append(rest, a.String())
		}
	}
	if strings.Join(rest, "\n") != legacy.Format() {
		t.Fatalf("hetero clause shifted the legacy timeline:\n%s\n--- vs ---\n%s",
			strings.Join(rest, "\n"), legacy.Format())
	}
}

func TestParseErrorOffsetAndIndicate(t *testing.T) {
	_, err := Parse("slow:n=1; slw:n=2 ;loss")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Clause != "slw:n=2" || pe.Off != 10 {
		t.Fatalf("clause %q at %d", pe.Clause, pe.Off)
	}
	want := "slow:n=1; slw:n=2 ;loss\n          ^^^^^^^"
	if got := pe.Indicate(); got != want {
		t.Fatalf("Indicate:\n%q\nwant:\n%q", got, want)
	}
	if !strings.Contains(pe.Error(), `"slw:n=2"`) {
		t.Fatalf("Error() = %q", pe.Error())
	}
}

func TestFlagValue(t *testing.T) {
	var fv FlagValue
	if err := fv.Set("slow:n=1,by=5s"); err != nil {
		t.Fatal(err)
	}
	if fv.Text != "slow:n=1,by=5s" || len(fv.Spec.Slowdowns) != 1 {
		t.Fatalf("fv = %+v", fv)
	}
	err := fv.Set("slow:n=1;quake")
	if err == nil {
		t.Fatal("bad spec accepted")
	}
	// The message must carry the caret line pointing at the clause.
	if !strings.Contains(err.Error(), "quake") || !strings.Contains(err.Error(), "^^^^^") {
		t.Fatalf("flag error lacks the indicator:\n%s", err)
	}
	// A failed Set leaves the previous value intact.
	if fv.Text != "slow:n=1,by=5s" {
		t.Fatalf("failed Set clobbered the value: %+v", fv)
	}
}
