package faults

import (
	"strings"
	"testing"

	"hpcsched/internal/sim"
)

func TestParseEmpty(t *testing.T) {
	for _, s := range []string{"", "  ", "none"} {
		spec, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !spec.Empty() {
			t.Fatalf("Parse(%q) not empty: %+v", s, spec)
		}
	}
}

func TestParseDefaultsAndOverrides(t *testing.T) {
	spec := MustParse("slow:n=3,factor=0.25,dur=2s;stall;loss:core=1;storm:daemons=4;mpidelay:extra=1ms")
	if len(spec.Slowdowns) != 1 || spec.Slowdowns[0].Count != 3 ||
		spec.Slowdowns[0].Factor != 0.25 || spec.Slowdowns[0].Dur != 2*sim.Second ||
		spec.Slowdowns[0].By != 60*sim.Second {
		t.Fatalf("slowdowns = %+v", spec.Slowdowns)
	}
	if len(spec.Stalls) != 1 || spec.Stalls[0].Dur != 250*sim.Millisecond {
		t.Fatalf("stalls = %+v", spec.Stalls)
	}
	if len(spec.CoreLoss) != 1 || spec.CoreLoss[0].Core != 1 {
		t.Fatalf("core loss = %+v", spec.CoreLoss)
	}
	if len(spec.Storms) != 1 || spec.Storms[0].Daemons != 4 || spec.Storms[0].Duty != 0.25 {
		t.Fatalf("storms = %+v", spec.Storms)
	}
	if len(spec.MPIDelays) != 1 || spec.MPIDelays[0].Extra != sim.Millisecond {
		t.Fatalf("mpi delays = %+v", spec.MPIDelays)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"quake:n=1",         // unknown kind
		"slow:bogus=3",      // unknown key
		"slow:factor=1.5",   // factor out of (0,1]
		"slow:factor=zero",  // malformed number
		"storm:duty=1.0",    // duty out of (0,1)
		"slow:dur=-5s",      // negative duration
		"slow:factor",       // malformed pair
		"stall:dur=5parsec", // bad duration unit
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestCompileDeterministic(t *testing.T) {
	spec := MustParse("slow:n=4;stall:n=2;loss;storm:n=2;mpidelay:n=3")
	a := Compile(spec, 42, 4)
	for i := 0; i < 10; i++ {
		b := Compile(spec, 42, 4)
		if a.Format() != b.Format() {
			t.Fatalf("same (spec, seed) compiled two timelines:\n%s\n--- vs ---\n%s",
				a.Format(), b.Format())
		}
	}
	c := Compile(spec, 43, 4)
	if a.Format() == c.Format() {
		t.Fatal("different seeds produced an identical fault timeline")
	}
}

func TestCompileZeroFaultIsEmpty(t *testing.T) {
	sc := Compile(Spec{}, 42, 4)
	if !sc.Empty() {
		t.Fatalf("zero spec compiled to %d actions", len(sc.Actions))
	}
	if sc.Format() != "(no faults)" {
		t.Fatalf("empty format = %q", sc.Format())
	}
	if inj := Install(nil, nil, sc); inj != nil {
		t.Fatal("installing an empty schedule returned a live injector")
	}
	var nilSchedule *Schedule
	if !nilSchedule.Empty() {
		t.Fatal("nil schedule not Empty")
	}
}

func TestCompileActionShape(t *testing.T) {
	spec := MustParse("slow:n=2,by=10s;mpidelay:n=1,by=10s")
	sc := Compile(spec, 7, 4)
	if len(sc.Actions) != 6 { // 2 slow pairs + 1 delay pair
		t.Fatalf("got %d actions, want 6:\n%s", len(sc.Actions), sc.Format())
	}
	// Sorted by time, and every onset precedes its recovery.
	on := map[ActionKind]int{}
	for i, a := range sc.Actions {
		if i > 0 && a.At < sc.Actions[i-1].At {
			t.Fatalf("actions out of order:\n%s", sc.Format())
		}
		switch a.Kind {
		case ActSlowOn, ActMPIDelayOn:
			on[a.Kind]++
		case ActSlowOff:
			if on[ActSlowOn] == 0 {
				t.Fatalf("recovery before onset:\n%s", sc.Format())
			}
			on[ActSlowOn]--
		case ActMPIDelayOff:
			if on[ActMPIDelayOn] == 0 {
				t.Fatalf("recovery before onset:\n%s", sc.Format())
			}
			on[ActMPIDelayOn]--
		}
		if a.CPU >= 4 {
			t.Fatalf("action targets CPU %d on a 4-CPU machine", a.CPU)
		}
	}
	if !strings.Contains(sc.Format(), "slow-on") {
		t.Fatalf("format lost the action kinds:\n%s", sc.Format())
	}
}

func TestCompileRespectsPinnedLoss(t *testing.T) {
	spec := Spec{CoreLoss: []CoreLossSpec{{Count: 1, Core: 1, At: 5 * sim.Second}}}
	sc := Compile(spec, 99, 4)
	if len(sc.Actions) != 1 {
		t.Fatalf("actions = %d, want 1", len(sc.Actions))
	}
	a := sc.Actions[0]
	if a.Kind != ActCoreLoss || a.CPU != 1 || a.At != 5*sim.Second {
		t.Fatalf("pinned loss compiled to %+v", a)
	}
}
