package faults

import (
	"fmt"
	"sort"
	"strings"

	"hpcsched/internal/batch"
	"hpcsched/internal/sim"
)

// ActionKind tags one scheduled fault transition.
type ActionKind int

const (
	ActHetero ActionKind = iota
	ActSlowOn
	ActSlowOff
	ActStallOn
	ActStallOff
	ActCoreLoss
	ActStorm
	ActMPIDelayOn
	ActMPIDelayOff
)

func (k ActionKind) String() string {
	switch k {
	case ActHetero:
		return "hetero"
	case ActSlowOn:
		return "slow-on"
	case ActSlowOff:
		return "slow-off"
	case ActStallOn:
		return "stall-on"
	case ActStallOff:
		return "stall-off"
	case ActCoreLoss:
		return "core-loss"
	case ActStorm:
		return "storm"
	case ActMPIDelayOn:
		return "mpidelay-on"
	case ActMPIDelayOff:
		return "mpidelay-off"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one fault transition at a virtual instant. Onset/recovery pairs
// are pre-expanded at compile time, so the whole timeline is plain data —
// printable, comparable, and independent of anything that happens at run
// time.
type Action struct {
	At     sim.Time
	Kind   ActionKind
	CPU    int      // target context (slowdowns) or core (stalls, loss); -1 n/a
	Factor float64  // speed multiplier (slowdowns, stalls)
	Extra  sim.Time // added message latency (MPI delay)
	Dur    sim.Time // window length (storms; informational elsewhere)

	// Storm shape (ActStorm only).
	Daemons int
	Duty    float64
	Burst   sim.Time

	seq int // draw order, the deterministic same-instant tiebreak
}

// String renders the action for the timeline.
func (a Action) String() string {
	switch a.Kind {
	case ActHetero:
		return fmt.Sprintf("%v %v cpu%d factor=%.3f", a.At, a.Kind, a.CPU, a.Factor)
	case ActSlowOn, ActSlowOff:
		return fmt.Sprintf("%v %v cpu%d factor=%.3f", a.At, a.Kind, a.CPU, a.Factor)
	case ActStallOn, ActStallOff:
		return fmt.Sprintf("%v %v core%d", a.At, a.Kind, a.CPU)
	case ActCoreLoss:
		return fmt.Sprintf("%v %v core%d", a.At, a.Kind, a.CPU)
	case ActStorm:
		return fmt.Sprintf("%v %v dur=%v daemons=%d duty=%.2f", a.At, a.Kind, a.Dur, a.Daemons, a.Duty)
	case ActMPIDelayOn, ActMPIDelayOff:
		return fmt.Sprintf("%v %v extra=%v", a.At, a.Kind, a.Extra)
	default:
		return fmt.Sprintf("%v %v", a.At, a.Kind)
	}
}

// Schedule is a compiled fault timeline: the actions in firing order, plus
// the seed its storm daemons derive their RNG streams from.
type Schedule struct {
	Actions []Action
	seed    uint64
}

// Empty reports whether the schedule performs no actions — the provably
// no-op case experiments skip installing entirely.
func (s *Schedule) Empty() bool { return s == nil || len(s.Actions) == 0 }

// Format renders the compiled timeline, one action per line. It is a pure
// function of the schedule, so two runs with the same seed and spec produce
// byte-identical output regardless of parallelism.
func (s *Schedule) Format() string {
	if s.Empty() {
		return "(no faults)"
	}
	lines := make([]string, len(s.Actions))
	for i, a := range s.Actions {
		lines[i] = a.String()
	}
	return strings.Join(lines, "\n")
}

// faultSalt decorrelates the fault layer's RNG stream from the engine's:
// both derive from the run seed, but through different splitmix64 inputs.
const faultSalt = 0xfa17_0000_0000_0001

// stallFactor is the speed scale of a stalled core: effectively frozen, yet
// finite (power5 clamps at its own minimum anyway).
const stallFactor = 1e-6

// Compile draws the run's fault timeline from spec for a machine with
// numCPUs contexts (numCPUs/2 cores). All randomness comes from a dedicated
// stream derived from seed, so the result is a pure function of
// (spec, seed, numCPUs); the engine's RNG is never touched.
func Compile(spec Spec, seed uint64, numCPUs int) *Schedule {
	sc := &Schedule{seed: batch.DeriveSeed(seed, faultSalt)}
	if spec.Empty() {
		return sc
	}
	if numCPUs < 2 {
		panic("faults: Compile needs at least one core")
	}
	rng := sim.NewRNG(sc.seed)
	numCores := numCPUs / 2
	add := func(a Action) {
		a.seq = len(sc.Actions)
		sc.Actions = append(sc.Actions, a)
	}
	// Draw order is fixed — kind by kind, spec by spec, window by window —
	// so the stream assigns the same values to the same windows always.
	// Hetero draws come first: a spec without hetero clauses consumes
	// nothing here, leaving every pre-existing spec's stream untouched.
	for _, f := range spec.Hetero {
		for cpu := 0; cpu < numCPUs; cpu++ {
			var scale float64
			if len(f.Scales) > 0 {
				scale = f.Scales[cpu%len(f.Scales)]
			} else {
				scale = 1 - f.Spread + f.Spread*rng.Float64()
			}
			if scale == 1 {
				continue
			}
			add(Action{At: 0, Kind: ActHetero, CPU: cpu, Factor: scale})
		}
	}
	for _, f := range spec.Slowdowns {
		for i := 0; i < f.Count; i++ {
			cpu := rng.Intn(numCPUs)
			at := rng.Duration(maxTime(f.By, 1))
			dur := rng.Jitter(maxTime(f.Dur, 1), 0.5) + 1
			add(Action{At: at, Kind: ActSlowOn, CPU: cpu, Factor: f.Factor, Dur: dur})
			add(Action{At: at + dur, Kind: ActSlowOff, CPU: cpu, Factor: f.Factor})
		}
	}
	for _, f := range spec.Stalls {
		for i := 0; i < f.Count; i++ {
			core := rng.Intn(numCores)
			at := rng.Duration(maxTime(f.By, 1))
			dur := rng.Jitter(maxTime(f.Dur, 1), 0.5) + 1
			add(Action{At: at, Kind: ActStallOn, CPU: core, Factor: stallFactor, Dur: dur})
			add(Action{At: at + dur, Kind: ActStallOff, CPU: core, Factor: stallFactor})
		}
	}
	for _, f := range spec.CoreLoss {
		for i := 0; i < f.Count; i++ {
			core := f.Core
			if core < 0 {
				core = rng.Intn(numCores)
			}
			at := f.At
			if at <= 0 {
				at = rng.Duration(maxTime(f.By, 1))
			}
			add(Action{At: at, Kind: ActCoreLoss, CPU: core})
		}
	}
	for _, f := range spec.Storms {
		for i := 0; i < f.Count; i++ {
			at := rng.Duration(maxTime(f.By, 1))
			dur := rng.Jitter(maxTime(f.Dur, 1), 0.5) + 1
			add(Action{At: at, Kind: ActStorm, Dur: dur,
				Daemons: f.Daemons, Duty: f.Duty, Burst: f.Burst})
		}
	}
	for _, f := range spec.MPIDelays {
		for i := 0; i < f.Count; i++ {
			at := rng.Duration(maxTime(f.By, 1))
			dur := rng.Jitter(maxTime(f.Dur, 1), 0.5) + 1
			add(Action{At: at, Kind: ActMPIDelayOn, Extra: f.Extra, Dur: dur})
			add(Action{At: at + dur, Kind: ActMPIDelayOff, Extra: f.Extra})
		}
	}
	// Firing order: (At, draw order). The sort is stable by construction of
	// the key, so the timeline is deterministic.
	sort.Slice(sc.Actions, func(i, j int) bool {
		a, b := &sc.Actions[i], &sc.Actions[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.seq < b.seq
	})
	return sc
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
