package faults

import (
	"errors"
	"fmt"
)

// FlagValue is a flag.Value that validates a fault spec as the flag set
// parses it, so a typo fails before any simulation runs. On a parse error
// the flag package's message carries the offending clause underlined:
//
//	invalid value "slow:n=1;slw:n=2" for flag -faults: faults: clause "slw:n=2": unknown fault kind "slw"
//	slow:n=1;slw:n=2
//	         ^^^^^^^
//
// Register with fs.Var(&fv, "faults", ...); read fv.Spec after parsing.
type FlagValue struct {
	Text string // the accepted input, verbatim
	Spec Spec
}

func (f *FlagValue) String() string { return f.Text }

// Set parses and validates s, decorating *ParseError values with the
// caret indicator.
func (f *FlagValue) Set(s string) error {
	spec, err := Parse(s)
	if err != nil {
		var pe *ParseError
		if errors.As(err, &pe) {
			return fmt.Errorf("%w\n%s", err, pe.Indicate())
		}
		return err
	}
	f.Text, f.Spec = s, spec
	return nil
}
