// Package faults is the deterministic fault-injection layer: it compiles a
// seed-derived schedule of perturbations — CPU-speed degradation windows,
// transient core stalls, permanent core loss, noise-burst storms, injected
// MPI message delay — and drives it through the simulator's existing hooks
// (engine events for timed onset/recovery, the POWER5 cached speed-pair
// machinery for slowdowns, sched CPU hotplug for core loss, the MPI
// transport's extra-delay knob for network degradation).
//
// Determinism contract: the schedule is a pure function of (Spec, seed,
// machine shape). Its random draws come from a dedicated RNG stream salted
// off the run seed, never from the engine's RNG, so compiling a schedule
// perturbs nothing; the same seed and spec produce the same fault timeline
// at any worker count. An empty Spec compiles to an empty schedule and
// installs nothing at all — a zero-fault run is bit-identical to a run
// without the fault layer (the golden tables pin this).
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"hpcsched/internal/sim"
)

// SlowdownSpec describes CPU-speed degradation windows: Count windows, each
// on a random context, starting at a random instant in [0, By), lasting
// Dur (jittered ±50%), scaling the context's speed by Factor.
type SlowdownSpec struct {
	Count  int
	Factor float64  // speed multiplier in (0, 1]
	Dur    sim.Time // mean window length
	By     sim.Time // onsets drawn uniformly in [0, By)
}

// StallSpec describes transient core stalls: Count windows, each freezing
// both contexts of a random core (speed scale ≈ 0) for Dur.
type StallSpec struct {
	Count int
	Dur   sim.Time
	By    sim.Time
}

// CoreLossSpec describes permanent core loss: Count cores die at random
// instants in [0, By); their tasks migrate to the survivors. Core pins the
// victim (−1 = random); At pins the instant (0 = random). Losing the last
// online core is refused at injection time and recorded in the timeline.
type CoreLossSpec struct {
	Count int
	Core  int // -1 = random
	At    sim.Time
	By    sim.Time
}

// StormSpec describes noise-burst storms: at each of Count onsets, Daemons
// extra per-CPU daemon tasks appear on every online CPU, burning Duty of it
// in Burst-length bursts until the storm's window (Dur) closes, then exit.
type StormSpec struct {
	Count   int
	Dur     sim.Time
	By      sim.Time
	Daemons int
	Duty    float64
	Burst   sim.Time
}

// MPIDelaySpec describes injected network degradation: Count windows of
// Dur during which every MPI message pays Extra additional latency.
type MPIDelaySpec struct {
	Count int
	Extra sim.Time
	Dur   sim.Time
	By    sim.Time
}

// HeteroSpec pins persistent per-context speed scales for the whole run —
// the per-core heterogeneity axis of the SiL perturbation taxonomy. When
// Scales is non-empty, context i runs at Scales[i % len(Scales)] of nominal
// speed; otherwise every context draws its scale uniformly from
// [1-Spread, 1]. Scales of exactly 1 install nothing for that context, so a
// fully nominal profile stays a no-op.
type HeteroSpec struct {
	Scales []float64 // explicit per-context scales in (0, 1]
	Spread float64   // random draw width in [0, 1) when Scales is empty
}

// Spec is the full fault-injection request of one run. The zero value is
// the (provably no-op) zero-fault spec.
type Spec struct {
	Hetero    []HeteroSpec
	Slowdowns []SlowdownSpec
	Stalls    []StallSpec
	CoreLoss  []CoreLossSpec
	Storms    []StormSpec
	MPIDelays []MPIDelaySpec
}

// Empty reports whether the spec requests no faults at all.
func (s Spec) Empty() bool {
	return len(s.Hetero) == 0 && len(s.Slowdowns) == 0 && len(s.Stalls) == 0 &&
		len(s.CoreLoss) == 0 && len(s.Storms) == 0 && len(s.MPIDelays) == 0
}

// ParseError pinpoints the clause of a fault spec that failed to parse, so
// the CLI can reject a bad -faults flag before any simulation runs and show
// the user exactly which clause is wrong.
type ParseError struct {
	Spec   string // the full input string
	Off    int    // byte offset of the offending clause within Spec
	Clause string // the offending clause text
	Err    error  // the underlying error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("faults: clause %q: %v", e.Clause, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// Indicate renders the full spec with a caret line underlining the
// offending clause:
//
//	slow:n=1;slw:n=2
//	         ^^^^^^^
func (e *ParseError) Indicate() string {
	width := len(e.Clause)
	if width < 1 {
		width = 1
	}
	return e.Spec + "\n" + strings.Repeat(" ", e.Off) + strings.Repeat("^", width)
}

// Parse builds a Spec from a compact string: semicolon-separated clauses of
// the form "kind:key=val,key=val". Kinds and their keys (all optional, with
// defaults):
//
//	hetero:spread=0.3                        persistent per-context speed scales
//	hetero:scales=1/0.8/0.6/0.9              (explicit profile, '/'-separated)
//	slow:n=1,factor=0.5,dur=5s,by=60s        speed degradation windows
//	stall:n=1,dur=250ms,by=60s               transient core stalls
//	loss:n=1,core=-1,at=0,by=60s             permanent core loss
//	storm:n=1,dur=2s,by=60s,daemons=2,duty=0.25,burst=500us
//	mpidelay:n=1,extra=200us,dur=5s,by=60s   injected message delay
//
// Durations use Go syntax ("250ms", "5s"). An empty string parses to the
// zero-fault Spec. Errors are *ParseError values carrying the offending
// clause and its position, so callers can point at it (see Indicate).
func Parse(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return spec, nil
	}
	off := 0
	for _, raw := range strings.SplitAfter(s, ";") {
		clauseOff := off
		off += len(raw)
		raw = strings.TrimSuffix(raw, ";")
		clause := strings.TrimSpace(raw)
		clauseOff += strings.Index(raw, clause)
		if clause == "" {
			continue
		}
		if err := parseClause(&spec, clause); err != nil {
			return spec, &ParseError{Spec: s, Off: clauseOff, Clause: clause, Err: err}
		}
	}
	return spec, nil
}

// parseClause applies one "kind:key=val,..." clause to spec.
func parseClause(spec *Spec, clause string) error {
	kind, rest, _ := strings.Cut(clause, ":")
	kv, err := parseKV(rest)
	if err != nil {
		return err
	}
	switch kind {
	case "hetero":
		f := HeteroSpec{Spread: 0.3}
		err = kv.apply(map[string]any{"spread": &f.Spread, "scales": &f.Scales})
		if err == nil && (f.Spread < 0 || f.Spread >= 1) {
			err = fmt.Errorf("spread %v out of [0,1)", f.Spread)
		}
		for _, sc := range f.Scales {
			if err == nil && (sc <= 0 || sc > 1) {
				err = fmt.Errorf("scale %v out of (0,1]", sc)
			}
		}
		spec.Hetero = append(spec.Hetero, f)
	case "slow":
		f := SlowdownSpec{Count: 1, Factor: 0.5, Dur: 5 * sim.Second, By: 60 * sim.Second}
		err = kv.apply(map[string]any{
			"n": &f.Count, "factor": &f.Factor, "dur": &f.Dur, "by": &f.By,
		})
		if err == nil && (f.Factor <= 0 || f.Factor > 1) {
			err = fmt.Errorf("factor %v out of (0,1]", f.Factor)
		}
		spec.Slowdowns = append(spec.Slowdowns, f)
	case "stall":
		f := StallSpec{Count: 1, Dur: 250 * sim.Millisecond, By: 60 * sim.Second}
		err = kv.apply(map[string]any{"n": &f.Count, "dur": &f.Dur, "by": &f.By})
		spec.Stalls = append(spec.Stalls, f)
	case "loss":
		f := CoreLossSpec{Count: 1, Core: -1, By: 60 * sim.Second}
		err = kv.apply(map[string]any{
			"n": &f.Count, "core": &f.Core, "at": &f.At, "by": &f.By,
		})
		spec.CoreLoss = append(spec.CoreLoss, f)
	case "storm":
		f := StormSpec{Count: 1, Dur: 2 * sim.Second, By: 60 * sim.Second,
			Daemons: 2, Duty: 0.25, Burst: 500 * sim.Microsecond}
		err = kv.apply(map[string]any{
			"n": &f.Count, "dur": &f.Dur, "by": &f.By,
			"daemons": &f.Daemons, "duty": &f.Duty, "burst": &f.Burst,
		})
		if err == nil && (f.Duty <= 0 || f.Duty >= 1) {
			err = fmt.Errorf("duty %v out of (0,1)", f.Duty)
		}
		spec.Storms = append(spec.Storms, f)
	case "mpidelay":
		f := MPIDelaySpec{Count: 1, Extra: 200 * sim.Microsecond,
			Dur: 5 * sim.Second, By: 60 * sim.Second}
		err = kv.apply(map[string]any{
			"n": &f.Count, "extra": &f.Extra, "dur": &f.Dur, "by": &f.By,
		})
		spec.MPIDelays = append(spec.MPIDelays, f)
	default:
		return fmt.Errorf("unknown fault kind %q", kind)
	}
	return err
}

// MustParse is Parse, panicking on error (for tests and literals).
func MustParse(s string) Spec {
	spec, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return spec
}

type kvPairs map[string]string

func parseKV(s string) (kvPairs, error) {
	kv := kvPairs{}
	s = strings.TrimSpace(s)
	if s == "" {
		return kv, nil
	}
	for _, pair := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("malformed key=value pair %q", pair)
		}
		kv[key] = val
	}
	return kv, nil
}

// apply assigns each present key into its typed destination and rejects
// unknown keys.
func (kv kvPairs) apply(dests map[string]any) error {
	for key, val := range kv {
		dest, ok := dests[key]
		if !ok {
			return fmt.Errorf("unknown key %q", key)
		}
		switch d := dest.(type) {
		case *int:
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("key %q: %w", key, err)
			}
			*d = n
		case *float64:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("key %q: %w", key, err)
			}
			*d = f
		case *[]float64:
			var list []float64
			for _, part := range strings.Split(val, "/") {
				f, err := strconv.ParseFloat(part, 64)
				if err != nil {
					return fmt.Errorf("key %q: %w", key, err)
				}
				list = append(list, f)
			}
			*d = list
		case *sim.Time:
			dur, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("key %q: %w", key, err)
			}
			if dur < 0 {
				return fmt.Errorf("key %q: negative duration %v", key, dur)
			}
			*d = sim.Time(dur.Nanoseconds())
		default:
			panic("faults: unsupported destination type")
		}
	}
	return nil
}
