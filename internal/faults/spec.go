// Package faults is the deterministic fault-injection layer: it compiles a
// seed-derived schedule of perturbations — CPU-speed degradation windows,
// transient core stalls, permanent core loss, noise-burst storms, injected
// MPI message delay — and drives it through the simulator's existing hooks
// (engine events for timed onset/recovery, the POWER5 cached speed-pair
// machinery for slowdowns, sched CPU hotplug for core loss, the MPI
// transport's extra-delay knob for network degradation).
//
// Determinism contract: the schedule is a pure function of (Spec, seed,
// machine shape). Its random draws come from a dedicated RNG stream salted
// off the run seed, never from the engine's RNG, so compiling a schedule
// perturbs nothing; the same seed and spec produce the same fault timeline
// at any worker count. An empty Spec compiles to an empty schedule and
// installs nothing at all — a zero-fault run is bit-identical to a run
// without the fault layer (the golden tables pin this).
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"hpcsched/internal/sim"
)

// SlowdownSpec describes CPU-speed degradation windows: Count windows, each
// on a random context, starting at a random instant in [0, By), lasting
// Dur (jittered ±50%), scaling the context's speed by Factor.
type SlowdownSpec struct {
	Count  int
	Factor float64  // speed multiplier in (0, 1]
	Dur    sim.Time // mean window length
	By     sim.Time // onsets drawn uniformly in [0, By)
}

// StallSpec describes transient core stalls: Count windows, each freezing
// both contexts of a random core (speed scale ≈ 0) for Dur.
type StallSpec struct {
	Count int
	Dur   sim.Time
	By    sim.Time
}

// CoreLossSpec describes permanent core loss: Count cores die at random
// instants in [0, By); their tasks migrate to the survivors. Core pins the
// victim (−1 = random); At pins the instant (0 = random). Losing the last
// online core is refused at injection time and recorded in the timeline.
type CoreLossSpec struct {
	Count int
	Core  int // -1 = random
	At    sim.Time
	By    sim.Time
}

// StormSpec describes noise-burst storms: at each of Count onsets, Daemons
// extra per-CPU daemon tasks appear on every online CPU, burning Duty of it
// in Burst-length bursts until the storm's window (Dur) closes, then exit.
type StormSpec struct {
	Count   int
	Dur     sim.Time
	By      sim.Time
	Daemons int
	Duty    float64
	Burst   sim.Time
}

// MPIDelaySpec describes injected network degradation: Count windows of
// Dur during which every MPI message pays Extra additional latency.
type MPIDelaySpec struct {
	Count int
	Extra sim.Time
	Dur   sim.Time
	By    sim.Time
}

// Spec is the full fault-injection request of one run. The zero value is
// the (provably no-op) zero-fault spec.
type Spec struct {
	Slowdowns []SlowdownSpec
	Stalls    []StallSpec
	CoreLoss  []CoreLossSpec
	Storms    []StormSpec
	MPIDelays []MPIDelaySpec
}

// Empty reports whether the spec requests no faults at all.
func (s Spec) Empty() bool {
	return len(s.Slowdowns) == 0 && len(s.Stalls) == 0 &&
		len(s.CoreLoss) == 0 && len(s.Storms) == 0 && len(s.MPIDelays) == 0
}

// Parse builds a Spec from a compact string: semicolon-separated clauses of
// the form "kind:key=val,key=val". Kinds and their keys (all optional, with
// defaults):
//
//	slow:n=1,factor=0.5,dur=5s,by=60s        speed degradation windows
//	stall:n=1,dur=250ms,by=60s               transient core stalls
//	loss:n=1,core=-1,at=0,by=60s             permanent core loss
//	storm:n=1,dur=2s,by=60s,daemons=2,duty=0.25,burst=500us
//	mpidelay:n=1,extra=200us,dur=5s,by=60s   injected message delay
//
// Durations use Go syntax ("250ms", "5s"). An empty string parses to the
// zero-fault Spec.
func Parse(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return spec, nil
	}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, _ := strings.Cut(clause, ":")
		kv, err := parseKV(rest)
		if err != nil {
			return spec, fmt.Errorf("faults: clause %q: %w", clause, err)
		}
		switch kind {
		case "slow":
			f := SlowdownSpec{Count: 1, Factor: 0.5, Dur: 5 * sim.Second, By: 60 * sim.Second}
			err = kv.apply(map[string]any{
				"n": &f.Count, "factor": &f.Factor, "dur": &f.Dur, "by": &f.By,
			})
			if err == nil && (f.Factor <= 0 || f.Factor > 1) {
				err = fmt.Errorf("factor %v out of (0,1]", f.Factor)
			}
			spec.Slowdowns = append(spec.Slowdowns, f)
		case "stall":
			f := StallSpec{Count: 1, Dur: 250 * sim.Millisecond, By: 60 * sim.Second}
			err = kv.apply(map[string]any{"n": &f.Count, "dur": &f.Dur, "by": &f.By})
			spec.Stalls = append(spec.Stalls, f)
		case "loss":
			f := CoreLossSpec{Count: 1, Core: -1, By: 60 * sim.Second}
			err = kv.apply(map[string]any{
				"n": &f.Count, "core": &f.Core, "at": &f.At, "by": &f.By,
			})
			spec.CoreLoss = append(spec.CoreLoss, f)
		case "storm":
			f := StormSpec{Count: 1, Dur: 2 * sim.Second, By: 60 * sim.Second,
				Daemons: 2, Duty: 0.25, Burst: 500 * sim.Microsecond}
			err = kv.apply(map[string]any{
				"n": &f.Count, "dur": &f.Dur, "by": &f.By,
				"daemons": &f.Daemons, "duty": &f.Duty, "burst": &f.Burst,
			})
			if err == nil && (f.Duty <= 0 || f.Duty >= 1) {
				err = fmt.Errorf("duty %v out of (0,1)", f.Duty)
			}
			spec.Storms = append(spec.Storms, f)
		case "mpidelay":
			f := MPIDelaySpec{Count: 1, Extra: 200 * sim.Microsecond,
				Dur: 5 * sim.Second, By: 60 * sim.Second}
			err = kv.apply(map[string]any{
				"n": &f.Count, "extra": &f.Extra, "dur": &f.Dur, "by": &f.By,
			})
			spec.MPIDelays = append(spec.MPIDelays, f)
		default:
			return spec, fmt.Errorf("faults: unknown fault kind %q in %q", kind, clause)
		}
		if err != nil {
			return spec, fmt.Errorf("faults: clause %q: %w", clause, err)
		}
	}
	return spec, nil
}

// MustParse is Parse, panicking on error (for tests and literals).
func MustParse(s string) Spec {
	spec, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return spec
}

type kvPairs map[string]string

func parseKV(s string) (kvPairs, error) {
	kv := kvPairs{}
	s = strings.TrimSpace(s)
	if s == "" {
		return kv, nil
	}
	for _, pair := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || key == "" || val == "" {
			return nil, fmt.Errorf("malformed key=value pair %q", pair)
		}
		kv[key] = val
	}
	return kv, nil
}

// apply assigns each present key into its typed destination and rejects
// unknown keys.
func (kv kvPairs) apply(dests map[string]any) error {
	for key, val := range kv {
		dest, ok := dests[key]
		if !ok {
			return fmt.Errorf("unknown key %q", key)
		}
		switch d := dest.(type) {
		case *int:
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("key %q: %w", key, err)
			}
			*d = n
		case *float64:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("key %q: %w", key, err)
			}
			*d = f
		case *sim.Time:
			dur, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("key %q: %w", key, err)
			}
			if dur < 0 {
				return fmt.Errorf("key %q: negative duration %v", key, dur)
			}
			*d = sim.Time(dur.Nanoseconds())
		default:
			panic("faults: unsupported destination type")
		}
	}
	return nil
}
