package faults

import (
	"fmt"
	"strings"

	"hpcsched/internal/batch"
	"hpcsched/internal/mpi"
	"hpcsched/internal/sched"
	"hpcsched/internal/sim"
)

// Injector applies a compiled Schedule to a running simulation. Every
// action becomes one engine event at its virtual instant; the callbacks
// drive the model through its existing hooks only:
//
//   - slowdowns and stalls fold a speed scale into the POWER5 context's
//     cached speed pair (power5.Context.SetSpeedScale), whose change hook
//     re-plans in-flight bursts exactly like a priority change;
//   - core loss goes through sched.Kernel.OfflineCore (hotplug-style task
//     evacuation);
//   - storms spawn ordinary pinned daemon tasks with their own derived RNG
//     streams, which exit when the storm window closes;
//   - MPI delay toggles the transport's extra-latency knob.
//
// Overlapping windows compose: a context's scale is the product of its
// active factors, the message delay the sum of its active extras.
type Injector struct {
	kernel *sched.Kernel
	world  *mpi.World
	node   int // the cluster node this injector's faults are scoped to
	sc     *Schedule

	factors  [][]float64 // per context: active speed factors
	extras   []sim.Time  // active message-delay add-ons
	stormSeq uint64

	log []string
}

// Install wires schedule sc into the kernel (and world, which may be nil
// when the run has no MPI job). An empty schedule installs nothing and
// returns nil: the zero-fault run schedules no events, draws no RNG values
// and touches no model state — provably a no-op. The returned Injector
// records the applied timeline for determinism checks and reports.
func Install(k *sched.Kernel, w *mpi.World, sc *Schedule) *Injector {
	return InstallAt(k, w, 0, sc)
}

// InstallAt is Install scoped to one cluster node: k is the node's kernel,
// and MPI-delay windows drive mpi.World.SetNodeExtraDelay(node, ·) so the
// fault add-on composes with the rank-pair topology extras and with other
// nodes' injectors instead of overwriting a global knob.
func InstallAt(k *sched.Kernel, w *mpi.World, node int, sc *Schedule) *Injector {
	if sc.Empty() {
		return nil
	}
	inj := &Injector{
		kernel:  k,
		world:   w,
		node:    node,
		sc:      sc,
		factors: make([][]float64, k.NumCPUs()),
	}
	for i := range sc.Actions {
		a := sc.Actions[i] // copy: each event owns its action value
		k.Engine.Schedule(a.At, func() { inj.apply(a) })
	}
	return inj
}

// Timeline returns the applied-action log so far (one line per action, in
// application order). For a completed run it is a pure function of
// (spec, seed, machine): the determinism tests compare it byte-for-byte
// across worker counts.
func (inj *Injector) Timeline() []string {
	out := make([]string, len(inj.log))
	copy(out, inj.log)
	return out
}

// FormatTimeline renders the applied-action log as one block.
func (inj *Injector) FormatTimeline() string { return strings.Join(inj.log, "\n") }

func (inj *Injector) logf(format string, args ...any) {
	inj.log = append(inj.log, fmt.Sprintf(format, args...))
}

func (inj *Injector) apply(a Action) {
	k := inj.kernel
	now := k.Now()
	switch a.Kind {
	case ActHetero:
		// Persistent heterogeneity: the factor is pushed once at t=0 and
		// never popped, composing multiplicatively with any transient
		// slowdown/stall windows that later touch the same context.
		inj.factors[a.CPU] = append(inj.factors[a.CPU], a.Factor)
		scale := inj.applyScale(a.CPU)
		inj.logf("%v hetero cpu%d factor=%.3f scale=%.3g", now, a.CPU, a.Factor, scale)
	case ActSlowOn:
		inj.factors[a.CPU] = append(inj.factors[a.CPU], a.Factor)
		scale := inj.applyScale(a.CPU)
		inj.logf("%v slow-on cpu%d factor=%.3f scale=%.3g", now, a.CPU, a.Factor, scale)
	case ActSlowOff:
		inj.factors[a.CPU] = removeOne(inj.factors[a.CPU], a.Factor)
		scale := inj.applyScale(a.CPU)
		inj.logf("%v slow-off cpu%d factor=%.3f scale=%.3g", now, a.CPU, a.Factor, scale)
	case ActStallOn, ActStallOff:
		for s := 0; s < 2; s++ {
			cpu := 2*a.CPU + s
			if a.Kind == ActStallOn {
				inj.factors[cpu] = append(inj.factors[cpu], a.Factor)
			} else {
				inj.factors[cpu] = removeOne(inj.factors[cpu], a.Factor)
			}
			inj.applyScale(cpu)
		}
		inj.logf("%v %v core%d", now, a.Kind, a.CPU)
	case ActCoreLoss:
		switch {
		case !k.CPUOnline(2 * a.CPU):
			inj.logf("%v core-loss core%d skipped (already offline)", now, a.CPU)
		case k.NumOnlineCPUs() <= 2:
			inj.logf("%v core-loss core%d skipped (last online core)", now, a.CPU)
		default:
			before := k.MigHotplug
			k.OfflineCore(a.CPU)
			inj.logf("%v core-loss core%d offline, %d task(s) migrated",
				now, a.CPU, k.MigHotplug-before)
		}
	case ActStorm:
		n := inj.spawnStorm(a)
		inj.logf("%v storm until %v: %d daemon(s), duty=%.2f", now, now+a.Dur, n, a.Duty)
	case ActMPIDelayOn, ActMPIDelayOff:
		if inj.world == nil {
			inj.logf("%v %v skipped (no MPI world)", now, a.Kind)
			return
		}
		if a.Kind == ActMPIDelayOn {
			inj.extras = append(inj.extras, a.Extra)
		} else {
			inj.extras = removeOneTime(inj.extras, a.Extra)
		}
		var sum sim.Time
		for _, e := range inj.extras {
			sum += e
		}
		inj.world.SetNodeExtraDelay(inj.node, sum)
		inj.logf("%v %v extra=%v total=%v", now, a.Kind, a.Extra, sum)
	}
}

// applyScale recomputes and programs the context's speed scale as the
// product of its active factors; it returns the new scale.
func (inj *Injector) applyScale(cpu int) float64 {
	scale := 1.0
	for _, f := range inj.factors[cpu] {
		scale *= f
	}
	inj.kernel.Chip.CPU(cpu).SetSpeedScale(scale)
	return scale
}

// stormSalt separates the storm daemons' RNG streams from the schedule
// compiler's.
const stormSalt = 0x5702_0000_0000_0000

// spawnStorm launches the storm's daemon tasks on every online CPU; each
// runs duty-cycled bursts until the window closes, then exits. Every daemon
// draws from its own stream derived from the schedule seed and a running
// counter, so storm behaviour is reproducible and independent of the
// engine's RNG position.
func (inj *Injector) spawnStorm(a Action) int {
	k := inj.kernel
	end := k.Now() + a.Dur
	burst := a.Burst
	if burst <= 0 {
		burst = 500 * sim.Microsecond
	}
	duty := a.Duty
	if duty <= 0 || duty >= 1 {
		duty = 0.25
	}
	gapMean := sim.Time(float64(burst) * (1 - duty) / duty)
	if gapMean <= 0 {
		gapMean = 1
	}
	n := 0
	for cpu := 0; cpu < k.NumCPUs(); cpu++ {
		if !k.CPUOnline(cpu) {
			continue
		}
		for d := 0; d < a.Daemons; d++ {
			rng := sim.NewRNG(batch.DeriveSeed(inj.sc.seed, stormSalt+inj.stormSeq))
			inj.stormSeq++
			name := fmt.Sprintf("storm%d/%d", d, cpu)
			k.AddProcess(sched.TaskSpec{
				Name:     name,
				Policy:   sched.PolicyNormal,
				Affinity: 1 << uint(cpu),
			}, func(env *sched.Env) {
				for env.Now() < end {
					env.Compute(rng.Jitter(burst, 0.5))
					if env.Now() >= end {
						break
					}
					env.Sleep(rng.Jitter(gapMean, 0.5) + 1)
				}
			})
			n++
		}
	}
	return n
}

// removeOne deletes the first element equal to v (the factor recorded in
// the action pair, so on/off always match).
func removeOne(xs []float64, v float64) []float64 {
	for i, x := range xs {
		if x == v {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}

func removeOneTime(xs []sim.Time, v sim.Time) []sim.Time {
	for i, x := range xs {
		if x == v {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}
