// Cluster example: the paper's future-work gang-scheduling level (§VI).
// An 8-rank job with adversarial load weights runs on a 2-node simulated
// cluster under three placement strategies; within each node the local
// HPCSched instance balances the residual imbalance with the hardware
// priority mechanism.
package main

import (
	"fmt"

	"hpcsched/internal/gang"
)

func main() {
	fmt.Println("Gang scheduling on a 2-node POWER5 cluster (paper §VI)")
	fmt.Println()

	job := gang.DefaultJob()
	cfg := gang.Config{Nodes: 2, Seed: 42, HPC: gang.HPCConfigForCluster()}

	results := gang.ComparePlacers(cfg, job)
	fmt.Print(gang.FormatComparison(results))
	fmt.Println()

	fmt.Println("Per-rank report under the gang (LPT) placement:")
	lpt := results[len(results)-1]
	for i, s := range lpt.Summaries {
		fmt.Printf("  %-4s node %d  %5.1f%% comp  hw prio %d\n",
			s.Name, lpt.Assign[i], s.CompPct, s.HWPrio)
	}
	fmt.Println()

	// Isolate the two levels: placement (gang) vs in-node balancing
	// (HPCSched).
	jobNoHPC := job
	jobNoHPC.UseHPC = false
	withHPC := gang.RunExperiment(cfg, job, gang.LPTPlacer{})
	without := gang.RunExperiment(gang.Config{Nodes: 2, Seed: 42}, jobNoHPC, gang.LPTPlacer{})
	fmt.Printf("gang placement alone:        %.2fs\n", without.ExecTime.Seconds())
	fmt.Printf("gang placement + HPCSched:   %.2fs (%+.1f%%)\n",
		withHPC.ExecTime.Seconds(),
		100*(1-withHPC.ExecTime.Seconds()/without.ExecTime.Seconds()))
	fmt.Println()
	fmt.Println("The gang level fixes what placement can fix (whole-rank moves);")
	fmt.Println("the node level fixes what only the hardware can fix (decode-slot")
	fmt.Println("shares between the two ranks of each core).")
}
