// SIESTA example: the irregular ab-initio materials-simulation analogue.
// The balancing heuristics barely move its utilizations, yet HPCSched
// still improves the run — the gain comes from the scheduling policy
// (class position → near-zero scheduler latency, no daemon competition),
// exactly the paper's §V-D analysis. The policy-only ablation proves it.
package main

import (
	"fmt"

	"hpcsched"
)

func main() {
	fmt.Println("SIESTA analogue: irregular master/worker phases, heavy messaging")
	fmt.Println("(paper Table VI / Figure 6)")
	fmt.Println()

	tr := hpcsched.ReproduceTable("siesta", 42)
	fmt.Print(tr.Format())
	fmt.Println()

	base := hpcsched.RunExperiment(hpcsched.ExperimentConfig{
		Workload: "siesta", Mode: hpcsched.ModeBaseline, Seed: 42,
	})
	policyOnly := hpcsched.RunExperiment(hpcsched.ExperimentConfig{
		Workload: "siesta", Mode: hpcsched.ModeHPCOnly, Seed: 42,
	})
	uniform := hpcsched.RunExperiment(hpcsched.ExperimentConfig{
		Workload: "siesta", Mode: hpcsched.ModeUniform, Seed: 42,
	})

	imp := func(r hpcsched.ExperimentResult) float64 {
		return 100 * (1 - r.ExecTime.Seconds()/base.ExecTime.Seconds())
	}
	fmt.Printf("baseline:                    %.2fs\n", base.ExecTime.Seconds())
	fmt.Printf("HPC class, mechanism off:    %.2fs (%+.1f%%)\n",
		policyOnly.ExecTime.Seconds(), imp(policyOnly))
	fmt.Printf("HPC class, Uniform heuristic: %.2fs (%+.1f%%)\n",
		uniform.ExecTime.Seconds(), imp(uniform))
	fmt.Println()
	fmt.Println("Most of the improvement survives with the priority mechanism")
	fmt.Println("disabled: as the paper concludes, SIESTA's gain comes from the")
	fmt.Println("scheduling policy, not from load-imbalance reduction.")

	// Mean wakeup latency per rank: the scheduler-latency effect itself.
	fmt.Println("\nmean wakeup latency (baseline vs HPC class):")
	for i := range base.Summaries {
		fmt.Printf("  %-4s %8.1fµs -> %6.1fµs\n", base.Summaries[i].Name,
			float64(base.Summaries[i].AvgWakeup)/1e3,
			float64(uniform.Summaries[i].AvgWakeup)/1e3)
	}
}
