// SIESTA example: the irregular ab-initio materials-simulation analogue.
// The balancing heuristics barely move its utilizations, yet HPCSched
// still improves the run — the gain comes from the scheduling policy
// (class position → near-zero scheduler latency, no daemon competition),
// exactly the paper's §V-D analysis. The policy-only ablation proves it.
package main

import (
	"context"
	"fmt"

	"hpcsched"
)

func main() {
	fmt.Println("SIESTA analogue: irregular master/worker phases, heavy messaging")
	fmt.Println("(paper Table VI / Figure 6)")
	fmt.Println()

	ctx := context.Background()
	table, err := hpcsched.Run(ctx, hpcsched.ScenarioSpec{
		Workload: "siesta", Seed: 42, Modes: hpcsched.TableModes("siesta"),
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(hpcsched.FormatTable("siesta", table.Results))
	fmt.Println()

	// The ablation trio runs as one three-mode scenario.
	abl, err := hpcsched.Run(ctx, hpcsched.ScenarioSpec{
		Workload: "siesta", Seed: 42,
		Modes: []hpcsched.Mode{hpcsched.ModeBaseline, hpcsched.ModeHPCOnly, hpcsched.ModeUniform},
	})
	if err != nil {
		panic(err)
	}
	base, policyOnly, uniform := abl.Results[0], abl.Results[1], abl.Results[2]

	imp := func(r hpcsched.ExperimentResult) float64 {
		return 100 * (1 - r.ExecTime.Seconds()/base.ExecTime.Seconds())
	}
	fmt.Printf("baseline:                    %.2fs\n", base.ExecTime.Seconds())
	fmt.Printf("HPC class, mechanism off:    %.2fs (%+.1f%%)\n",
		policyOnly.ExecTime.Seconds(), imp(policyOnly))
	fmt.Printf("HPC class, Uniform heuristic: %.2fs (%+.1f%%)\n",
		uniform.ExecTime.Seconds(), imp(uniform))
	fmt.Println()
	fmt.Println("Most of the improvement survives with the priority mechanism")
	fmt.Println("disabled: as the paper concludes, SIESTA's gain comes from the")
	fmt.Println("scheduling policy, not from load-imbalance reduction.")

	// Mean wakeup latency per rank: the scheduler-latency effect itself.
	fmt.Println("\nmean wakeup latency (baseline vs HPC class):")
	for i := range base.Summaries {
		fmt.Printf("  %-4s %8.1fµs -> %6.1fµs\n", base.Summaries[i].Name,
			float64(base.Summaries[i].AvgWakeup)/1e3,
			float64(uniform.Summaries[i].AvgWakeup)/1e3)
	}
}
