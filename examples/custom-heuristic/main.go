// Custom-heuristic example: implement a user-defined balancing heuristic
// against the public API and compare it with the paper's two on the
// dynamic MetBenchVar workload.
//
// The custom heuristic ("deadband") moves priorities two steps at a time
// when the utilization is extreme, one step otherwise — more aggressive
// than Uniform, less jumpy than Adaptive.
package main

import (
	"fmt"

	"hpcsched"
	"hpcsched/internal/core"
	"hpcsched/internal/power5"
)

// deadband implements hpcsched.Heuristic.
type deadband struct{}

func (deadband) Name() string { return "deadband" }

func (deadband) Next(s *core.LIDState, cur power5.Priority, p core.Params) power5.Priority {
	s.Score = p.G*s.GlobalUtil + p.L*s.LastUtil
	step := power5.Priority(1)
	if s.Score > 97 || s.Score < 30 {
		step = 2 // far from balance: move faster
	}
	switch {
	case s.Score >= p.HighUtil:
		cur += step
	case s.Score <= p.LowUtil:
		cur -= step
	}
	if cur < p.MinPrio {
		cur = p.MinPrio
	}
	if cur > p.MaxPrio {
		cur = p.MaxPrio
	}
	return cur
}

func main() {
	fmt.Println("Comparing heuristics on MetBenchVar (load reversal every 15 iterations)")
	fmt.Println()

	run := func(name string, h hpcsched.Heuristic) {
		m := hpcsched.NewMachine(hpcsched.MachineConfig{
			Seed: 42,
			HPC:  &hpcsched.HPCConfig{Heuristic: h},
		})
		w := m.NewWorld(4)
		small, large := 300*hpcsched.Millisecond, 1700*hpcsched.Millisecond
		for i := 0; i < 4; i++ {
			i := i
			w.Spawn(i, hpcsched.TaskSpec{Policy: hpcsched.PolicyHPC}, func(r *hpcsched.Rank) {
				for it := 0; it < 30; it++ {
					w := small
					if (i%2 == 1) != (it/10%2 == 1) { // reversal every 10
						w = large
					}
					r.Compute(w)
					r.Barrier()
				}
			})
		}
		end := m.Run(600 * hpcsched.Second)
		fmt.Printf("%-10s finished in %7.2fs", name, end.Seconds())
		for _, s := range hpcsched.Summaries(w.Tasks(), end) {
			fmt.Printf("  %s=%4.1f%%", s.Name, s.CompPct)
		}
		fmt.Println()
	}

	run("uniform", hpcsched.Uniform)
	run("adaptive", hpcsched.Adaptive)
	run("hybrid", hpcsched.Hybrid)
	run("deadband", deadband{})
}
