// BT-MZ example: the NAS multi-zone benchmark analogue with zone-skewed
// per-rank work and neighbour boundary exchange, balanced dynamically by
// HPCSched (paper Table V / Figure 5).
package main

import (
	"context"
	"fmt"

	"hpcsched"
)

func main() {
	fmt.Println("BT-MZ analogue: uneven zones, isend/irecv/waitall neighbour")
	fmt.Println("exchange, per-iteration residual reduction (paper Table V)")
	fmt.Println()

	ctx := context.Background()
	table, err := hpcsched.Run(ctx, hpcsched.ScenarioSpec{
		Workload: "btmz", Seed: 42, Modes: hpcsched.TableModes("btmz"),
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(hpcsched.FormatTable("btmz", table.Results))
	fmt.Println()

	// Zoom into a few iterations of the adaptive run, like Figure 5's
	// excerpt traces.
	traced, err := hpcsched.Run(ctx, hpcsched.ScenarioSpec{
		Workload: "btmz", Mode: hpcsched.ModeAdaptive, Seed: 42, Trace: true,
	})
	if err != nil {
		panic(err)
	}
	r := traced.Results[0]
	fmt.Printf("--- Adaptive, iterations ~10-16 (exec %.2fs) ---\n", r.ExecTime.Seconds())
	fmt.Print(r.Recorder.Render(hpcsched.RenderOptions{
		Width: 96,
		From:  5 * hpcsched.Second,
		To:    8 * hpcsched.Second,
		Prios: false,
	}))
	fmt.Println()
	fmt.Println("P4 (the heaviest zone) is raised to priority 6; P1, sharing its")
	fmt.Println("core, is slowed hard — the asymmetric trade the paper describes —")
	fmt.Println("but the application as a whole finishes ~10% sooner.")
}
