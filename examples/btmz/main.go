// BT-MZ example: the NAS multi-zone benchmark analogue with zone-skewed
// per-rank work and neighbour boundary exchange, balanced dynamically by
// HPCSched (paper Table V / Figure 5).
package main

import (
	"fmt"

	"hpcsched"
)

func main() {
	fmt.Println("BT-MZ analogue: uneven zones, isend/irecv/waitall neighbour")
	fmt.Println("exchange, per-iteration residual reduction (paper Table V)")
	fmt.Println()

	tr := hpcsched.ReproduceTable("btmz", 42)
	fmt.Print(tr.Format())
	fmt.Println()

	// Zoom into a few iterations of the adaptive run, like Figure 5's
	// excerpt traces.
	r := hpcsched.RunExperiment(hpcsched.ExperimentConfig{
		Workload: "btmz",
		Mode:     hpcsched.ModeAdaptive,
		Seed:     42,
		Trace:    true,
	})
	fmt.Printf("--- Adaptive, iterations ~10-16 (exec %.2fs) ---\n", r.ExecTime.Seconds())
	fmt.Print(r.Recorder.Render(hpcsched.RenderOptions{
		Width: 96,
		From:  5 * hpcsched.Second,
		To:    8 * hpcsched.Second,
		Prios: false,
	}))
	fmt.Println()
	fmt.Println("P4 (the heaviest zone) is raised to priority 6; P1, sharing its")
	fmt.Println("core, is slowed hard — the asymmetric trade the paper describes —")
	fmt.Println("but the application as a whole finishes ~10% sooner.")
}
