// Quickstart: build a simulated POWER5 machine with the HPCSched class
// installed, run a small imbalanced MPI job under it, and print the
// per-process report.
package main

import (
	"fmt"

	"hpcsched"
)

func main() {
	// A machine with the paper's HPC scheduling class between the
	// real-time and fair classes, Uniform heuristic, default tunables.
	m := hpcsched.NewMachine(hpcsched.MachineConfig{
		Seed: 1,
		HPC:  &hpcsched.HPCConfig{Heuristic: hpcsched.Uniform},
	})

	// A 2-rank MPI job: rank 0 computes 100 ms per iteration, rank 1
	// computes 400 ms; rank 0 doubles as the coordinator, so both ranks
	// get a wait phase each iteration (the Load Imbalance Detector's
	// iteration boundary). On one core of a 2-way SMT chip this is the
	// paper's load-imbalance problem in miniature.
	w := m.NewWorld(2)
	for i := 0; i < 2; i++ {
		i := i
		w.Spawn(i, hpcsched.TaskSpec{
			Policy:   hpcsched.PolicyHPC,
			Affinity: 1 << uint(i), // pin the pair to core 0
		}, func(r *hpcsched.Rank) {
			for it := 0; it < 12; it++ {
				if i == 0 {
					r.Compute(100 * hpcsched.Millisecond)
					r.Recv(1, it)     // wait for the heavy rank's report
					r.Send(1, it, 64) // go-ahead
				} else {
					r.Compute(400 * hpcsched.Millisecond)
					r.Send(0, it, 64)
					r.Recv(0, it) // wait for the go-ahead
				}
			}
		})
	}

	end := m.Run(60 * hpcsched.Second)
	fmt.Printf("job finished at %v\n\n", end)
	for _, s := range hpcsched.Summaries(w.Tasks(), end) {
		fmt.Printf("%-4s computed %5.1f%% of the time, final hw priority %d\n",
			s.Name, s.CompPct, s.HWPrio)
	}
	fmt.Println("\nThe heavy rank was raised to hardware priority 6 after the")
	fmt.Println("first iteration; the light rank stayed at 4 and now computes")
	fmt.Println("(slowly, on the leftover decode slots) instead of idling.")
}
