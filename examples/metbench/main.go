// MetBench example: reproduce the paper's Table III comparison — the
// imbalanced BSC microbenchmark under the baseline CFS scheduler, the
// hand-tuned static priorities, and the two HPCSched heuristics — and
// render the Figure 3 execution traces.
package main

import (
	"context"
	"fmt"

	"hpcsched"
)

func main() {
	fmt.Println("MetBench: 2 small + 2 large loads on a 4-context POWER5")
	fmt.Println("(paper Table III / Figure 3)")
	fmt.Println()

	ctx := context.Background()
	table, err := hpcsched.Run(ctx, hpcsched.ScenarioSpec{
		Workload: "metbench", Seed: 42, Modes: hpcsched.TableModes("metbench"),
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(hpcsched.FormatTable("metbench", table.Results))
	fmt.Println()

	traced, err := hpcsched.Run(ctx, hpcsched.ScenarioSpec{
		Workload: "metbench", Seed: 42, Trace: true,
		Modes: []hpcsched.Mode{hpcsched.ModeBaseline, hpcsched.ModeUniform},
	})
	if err != nil {
		panic(err)
	}
	for _, r := range traced.Results {
		fmt.Printf("--- %v (exec %.2fs) ---\n", r.Config.Mode, r.ExecTime.Seconds())
		fmt.Print(r.Recorder.Render(hpcsched.RenderOptions{Width: 96}))
		fmt.Println()
	}
	fmt.Println("In the baseline the small workers (P1, P3) spend ~75% of each")
	fmt.Println("iteration waiting ('.'); under HPCSched the scheduler raises the")
	fmt.Println("large workers to priority 6 after the first iteration and the")
	fmt.Println("whole machine computes ('#') nearly all the time.")
}
