// Package hpcsched is a faithful, simulation-backed reproduction of
// "A Dynamic Scheduler for Balancing HPC Applications" (Boneti, Gioiosa,
// Cazorla, Valero — SC 2008).
//
// The package re-exports a stable facade over the internal packages:
//
//   - a deterministic discrete-event simulation of an IBM POWER5 chip
//     (2 cores × 2 SMT contexts) with software-controlled hardware thread
//     priorities;
//   - a Linux-2.6.24-style scheduler framework (scheduling classes, CFS,
//     real-time, idle) running on that chip;
//   - HPCSched, the paper's contribution: the SCHED_HPC class, the Load
//     Imbalance Detector, the Uniform and Adaptive heuristics and the
//     POWER5 priority mechanism;
//   - a simulated MPI runtime and the paper's four workloads (MetBench,
//     MetBenchVar, BT-MZ, SIESTA);
//   - the experiment harness that regenerates every table and figure of
//     the paper's evaluation.
//
// Quick start — one ScenarioSpec describes what to simulate, how often
// and how to execute it; Run executes it, Sweep fans a grid out on one
// shared pool:
//
//	sr, _ := hpcsched.Run(context.Background(), hpcsched.ScenarioSpec{
//		Workload: "metbench",
//		Seed:     42,
//		Modes:    hpcsched.TableModes("metbench"),
//	})
//	fmt.Println(hpcsched.FormatTable("metbench", sr.Results))
//
// See examples/ for complete programs.
package hpcsched

import (
	"context"
	"io"

	"hpcsched/internal/core"
	"hpcsched/internal/experiments"
	"hpcsched/internal/faults"
	"hpcsched/internal/metrics"
	"hpcsched/internal/mpi"
	"hpcsched/internal/noise"
	"hpcsched/internal/power5"
	"hpcsched/internal/sched"
	"hpcsched/internal/selector"
	"hpcsched/internal/sim"
	"hpcsched/internal/trace"
	"hpcsched/internal/workloads"
)

// Re-exported core types. The facade keeps the public API surface in one
// place; the internal packages remain free to evolve.
type (
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Engine is the discrete-event core.
	Engine = sim.Engine
	// Chip is the POWER5 model.
	Chip = power5.Chip
	// Priority is a hardware thread priority (0..7).
	Priority = power5.Priority
	// PerfModel maps priority pairs to execution speed.
	PerfModel = power5.PerfModel
	// Kernel is the scheduler core.
	Kernel = sched.Kernel
	// Task is the kernel task descriptor.
	Task = sched.Task
	// TaskSpec configures a new simulated process.
	TaskSpec = sched.TaskSpec
	// Env is the process-side system-call surface.
	Env = sched.Env
	// Policy is a scheduling policy (SCHED_NORMAL, SCHED_HPC, ...).
	Policy = sched.Policy
	// HPCClass is the paper's scheduling class.
	HPCClass = core.HPCClass
	// HPCConfig assembles an HPC class.
	HPCConfig = core.Config
	// HPCParams are the sysfs-tunable heuristic parameters.
	HPCParams = core.Params
	// Heuristic chooses hardware priorities from iteration statistics.
	Heuristic = core.Heuristic
	// Mechanism applies hardware priorities (architecture-dependent).
	Mechanism = core.Mechanism
	// World is a simulated MPI job.
	World = mpi.World
	// Rank is one MPI process.
	Rank = mpi.Rank
	// Recorder captures scheduling traces.
	Recorder = trace.Recorder
	// TraceSink consumes trace records as they are produced.
	TraceSink = trace.Sink
	// PRVSink streams Paraver .prv records to a seekable writer.
	PRVSink = trace.PRVSink
	// NullTraceSink discards trace records (overhead measurement).
	NullTraceSink = trace.NullSink
	// RenderOptions controls ASCII trace rendering.
	RenderOptions = trace.RenderOptions
	// TaskSummary is one row of the per-process report.
	TaskSummary = metrics.TaskSummary
	// NoiseConfig describes injected OS background activity.
	NoiseConfig = noise.Config
	// ExperimentConfig is one experiment run of the harness.
	ExperimentConfig = experiments.Config
	// ExperimentResult carries an experiment's measurements.
	ExperimentResult = experiments.Result
	// TableResult is a reproduced paper table.
	TableResult = experiments.TableResult
	// TableStats is a multi-seed, CI-quality reproduction of a table.
	TableStats = experiments.TableStats
	// DegradedTableStats is TableStats plus explicit per-mode failure
	// accounting from a hardened run.
	DegradedTableStats = experiments.DegradedTableStats
	// Mode selects the scheduler configuration of an experiment.
	Mode = experiments.Mode
	// BatchOptions tunes the parallel batch runner (workers, progress).
	//
	// Deprecated: use ExecOptions (the zero value is the same soft pool).
	BatchOptions = experiments.BatchOptions
	// BatchResult holds a batch's results in submission order.
	BatchResult = experiments.BatchResult

	// ScenarioSpec is the unified run request: workload, scheduler
	// mode(s), replica seeds, fault spec, horizon, trace sink and pool
	// options in one value. Every other entry point is a thin expansion
	// of it.
	ScenarioSpec = experiments.ScenarioSpec
	// ScenarioResult carries a scenario's replica runs (submission
	// order) plus explicit failures when the pool ran hardened.
	ScenarioResult = experiments.ScenarioResult
	// ExecOptions is the one batch-execution options struct: the zero
	// value is soft execution (no watchdog, no retries, absolute
	// determinism); setting Timeout/MaxRetries/StallTimeout selects the
	// hardened pool.
	ExecOptions = experiments.ExecOptions
	// FaultSpec is a deterministic fault-injection request (see
	// ParseFaultSpec for the grammar).
	FaultSpec = faults.Spec
	// FaultParseError pinpoints the offending clause of a fault spec;
	// its Indicate method renders the spec with a caret underneath.
	FaultParseError = faults.ParseError

	// SelectorScenario is one cell of a perturbation grid for
	// scheduler selection (SelectSchedulers).
	SelectorScenario = selector.Scenario
	// SelectorOptions configures a selection sweep.
	SelectorOptions = selector.Options
	// SelectorReport is a scored selection sweep: per-phase winner
	// tables and oracle composites.
	SelectorReport = selector.Report
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Scheduling policies.
const (
	PolicyNormal = sched.PolicyNormal
	PolicyBatch  = sched.PolicyBatch
	PolicyFIFO   = sched.PolicyFIFO
	PolicyRR     = sched.PolicyRR
	PolicyHPC    = sched.PolicyHPC
	PolicyIdle   = sched.PolicyIdle
)

// Hardware thread priorities (Table II of the paper).
const (
	PrioThreadOff  = power5.PrioThreadOff
	PrioVeryLow    = power5.PrioVeryLow
	PrioLow        = power5.PrioLow
	PrioMediumLow  = power5.PrioMediumLow
	PrioMedium     = power5.PrioMedium
	PrioMediumHigh = power5.PrioMediumHigh
	PrioHigh       = power5.PrioHigh
	PrioVeryHigh   = power5.PrioVeryHigh
)

// Experiment modes (the rows of the paper's tables).
const (
	ModeBaseline = experiments.ModeBaseline
	ModeStatic   = experiments.ModeStatic
	ModeUniform  = experiments.ModeUniform
	ModeAdaptive = experiments.ModeAdaptive
	ModeHybrid   = experiments.ModeHybrid
	ModeHPCOnly  = experiments.ModeHPCOnly
)

// MachineConfig configures a simulated machine.
type MachineConfig struct {
	// Seed drives every random decision; equal seeds → identical runs.
	Seed uint64
	// Cores is the number of dual-context cores (default 2: the paper's
	// machine).
	Cores int
	// Perf overrides the chip performance model (nil → calibrated).
	Perf PerfModel
	// Kernel overrides the scheduler options (zero value → 2.6.24-like
	// defaults).
	Kernel sched.Options
	// Noise configures OS background activity (nil → light default;
	// use &hpcsched.SilentNoise for none).
	Noise *NoiseConfig
	// HPC, when non-nil, installs the HPC scheduling class.
	HPC *HPCConfig
	// Tracer records scheduling events when non-nil.
	Tracer *Recorder
}

// SilentNoise disables background daemons.
var SilentNoise = noise.Silent()

// Machine is an assembled simulation: chip + kernel (+ optional HPC class
// and noise), ready for workloads.
type Machine struct {
	Engine *Engine
	Chip   *Chip
	Kernel *Kernel
	HPC    *HPCClass
}

// NewMachine builds a simulated machine.
func NewMachine(cfg MachineConfig) *Machine {
	cores := cfg.Cores
	if cores <= 0 {
		cores = 2
	}
	pm := cfg.Perf
	if pm == nil {
		pm = power5.NewCalibratedPerfModel()
	}
	engine := sim.NewEngine(cfg.Seed)
	chip := power5.NewChip(cores, pm)
	kernel := sched.NewKernel(engine, chip, cfg.Kernel)
	m := &Machine{Engine: engine, Chip: chip, Kernel: kernel}
	if cfg.HPC != nil {
		m.HPC = core.MustInstall(kernel, *cfg.HPC)
	}
	if cfg.Tracer != nil {
		kernel.SetTracer(cfg.Tracer)
	}
	nz := noise.DefaultConfig()
	if cfg.Noise != nil {
		nz = *cfg.Noise
	}
	noise.Install(kernel, nz)
	return m
}

// NewWorld creates an MPI world of the given size on the machine.
func (m *Machine) NewWorld(size int) *World {
	return mpi.NewWorld(m.Kernel, size, mpi.DefaultOptions())
}

// Run drives the simulation until every spawned (watched) task exits or
// the horizon passes, then reaps background processes. It returns the
// finish time.
func (m *Machine) Run(horizon Time) Time {
	end := m.Kernel.RunUntilWatchedExit(horizon)
	m.Kernel.Shutdown()
	return end
}

// Summaries reports per-task statistics for the given tasks at time end.
func Summaries(tasks []*Task, end Time) []TaskSummary {
	return metrics.Summarize(tasks, end)
}

// NewRecorder returns a trace recorder to pass in MachineConfig.Tracer.
func NewRecorder() *Recorder { return trace.NewRecorder() }

// NewStreamRecorder returns a trace recorder that hands every record to
// sink without retaining history (see trace.NewRecorderWithSink).
func NewStreamRecorder(sink TraceSink) *Recorder { return trace.NewRecorderWithSink(sink) }

// NewPRVSink returns a streaming .prv sink over w (an *os.File works; the
// header is patched in place when the recorder finishes).
func NewPRVSink(w io.WriteSeeker) *PRVSink { return trace.NewPRVSink(w) }

// DefaultHPCParams returns the paper's tunables (HIGH_UTIL=85, LOW_UTIL=65,
// priorities [4,6], G=0.10/L=0.90).
func DefaultHPCParams() HPCParams { return core.DefaultParams() }

// Heuristics.
var (
	// Uniform is the paper's global-utilization heuristic.
	Uniform Heuristic = core.UniformHeuristic{}
	// Adaptive is the paper's last-iteration-weighted heuristic.
	Adaptive Heuristic = core.AdaptiveHeuristic{}
	// Hybrid is the future-work heuristic (§VI): Uniform while the
	// application looks constant, Adaptive through phase changes.
	Hybrid Heuristic = core.HybridHeuristic{}
	// Fixed never changes priorities (policy-only ablation).
	Fixed Heuristic = core.FixedHeuristic{}
)

// Run executes one scenario: the spec's (seed × mode) replica grid on
// the unified pool. Soft execution (zero ExecOptions) preserves absolute
// determinism — identical results at any worker count, panics propagate;
// hardened execution records per-replica failures instead.
func Run(ctx context.Context, spec ScenarioSpec) (ScenarioResult, error) {
	return experiments.RunScenario(ctx, spec)
}

// Sweep executes a scenario grid on one shared worker pool: all replicas
// of all specs flatten into a single deterministic submission. opts
// controls the shared pool (each spec's own Exec is ignored).
func Sweep(ctx context.Context, grid []ScenarioSpec, opts ExecOptions) ([]ScenarioResult, error) {
	return experiments.SweepScenarios(ctx, grid, opts)
}

// ParseFaultSpec parses the fault grammar
// ("hetero|slow|stall|loss|storm|mpidelay:key=val,...;..."). Errors are
// *FaultParseError values pinpointing the offending clause, so CLIs can
// reject a bad spec before any simulation runs.
func ParseFaultSpec(s string) (FaultSpec, error) { return faults.Parse(s) }

// TableModes returns the mode rows the paper reports for a workload.
func TableModes(workload string) []Mode { return experiments.TableModes(workload) }

// FormatTable renders mode-row results in the paper's table layout.
func FormatTable(workload string, rows []ExperimentResult) string {
	return experiments.TableResult{Workload: workload, Rows: rows}.Format()
}

// TableStatsOf aggregates a replicated scenario's results into per-mode
// mean / stddev / 95% CI statistics (the spec must replicate via Seeds
// or Replicas, with Modes set to the workload's TableModes).
func TableStatsOf(sr ScenarioResult) TableStats { return experiments.TableStatsOf(sr) }

// DegradedTableStatsOf aggregates a hardened replicated scenario,
// widening intervals over the finished replicas and reporting failures
// next to them instead of dropping them silently.
func DegradedTableStatsOf(sr ScenarioResult) DegradedTableStats {
	return experiments.DegradedTableStatsOf(sr)
}

// SelectSchedulers sweeps perturbation scenarios across scheduler modes
// and reports per-phase winners plus the switch-at-phase-boundary oracle
// composite (with 95% CI) per scenario — simulation-assisted scheduler
// selection in the SimAS sense.
func SelectSchedulers(ctx context.Context, scenarios []SelectorScenario, opts SelectorOptions) (*SelectorReport, error) {
	return selector.Run(ctx, scenarios, opts)
}

// DefaultSelectorScenarios returns the standard three-scenario
// perturbation grid (heterogeneity, slowdown+storm, combined) for a
// workload.
func DefaultSelectorScenarios(workload string) []SelectorScenario {
	return selector.DefaultScenarios(workload)
}

// RunExperiment executes one configured experiment run.
//
// Deprecated: use Run with ScenarioSpec{Advanced: &cfg} (or the spec's
// first-class fields); this wrapper remains for compatibility.
func RunExperiment(cfg ExperimentConfig) ExperimentResult {
	sr, err := Run(context.Background(), ScenarioSpec{Advanced: &cfg})
	if err != nil {
		panic(err) // unreachable: background context, soft pool
	}
	return sr.Results[0]
}

// ReproduceTable regenerates one of the paper's tables
// ("metbench" → Table III, "metbenchvar" → IV, "btmz" → V, "siesta" → VI).
//
// Deprecated: use Run with Modes: TableModes(workload) and render with
// FormatTable.
func ReproduceTable(workload string, seed uint64) TableResult {
	sr, err := Run(context.Background(), ScenarioSpec{
		Workload: workload, Seed: seed, Modes: TableModes(workload),
	})
	if err != nil {
		panic(err) // unreachable: background context, soft pool
	}
	return TableResult{Workload: workload, Rows: sr.Results}
}

// RunBatch executes a slice of experiment configs on a worker pool
// (default: one worker per CPU). Results come back in submission order,
// and the determinism contract holds: same configs → identical results
// at any worker count. Cancel ctx to stop early; see BatchOptions for
// workers and progress reporting.
//
// Deprecated: use Sweep with one ScenarioSpec per config (Advanced
// carries a verbatim config), or a single spec when the configs only
// differ in seed or mode.
func RunBatch(ctx context.Context, cfgs []ExperimentConfig, opts BatchOptions) (BatchResult, error) {
	grid := make([]ScenarioSpec, len(cfgs))
	for i := range cfgs {
		grid[i] = ScenarioSpec{Advanced: &cfgs[i]}
	}
	srs, err := Sweep(ctx, grid, opts.Exec())
	br := BatchResult{Results: make([]ExperimentResult, 0, len(cfgs))}
	for _, sr := range srs {
		br.Results = append(br.Results, sr.Results...)
	}
	return br, err
}

// ReproduceTableStats regenerates a paper table over several replication
// seeds in parallel and aggregates mean, spread and 95% confidence
// intervals per mode.
//
// Deprecated: use Run with Seeds and Modes set and aggregate from the
// ScenarioResult, or keep this wrapper for the pre-rendered table.
func ReproduceTableStats(ctx context.Context, workload string, seeds []uint64, opts BatchOptions) (TableStats, error) {
	return experiments.RunTableStatsBatch(ctx, workload, seeds, opts)
}

// ReplicaSeeds returns n independent replication seeds derived from
// base; the prefix is stable when n grows.
func ReplicaSeeds(base uint64, n int) []uint64 { return experiments.SeedsFrom(base, n) }

// Workloads lists the available workload names.
func Workloads() []string { return workloads.Names() }
