module hpcsched

go 1.24
