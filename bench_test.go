// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§V), plus the ablations docs/ARCHITECTURE.md calls out.
//
// Each benchmark iteration executes one complete simulated run; custom
// metrics report the simulated execution time (sim_s) and, where a
// baseline exists, the improvement over it (improve_%), so the benchmark
// output reads like the paper's tables:
//
//	go test -bench=TableIII -benchmem
//
// Absolute wall-clock ns/op figures measure the simulator itself, not the
// paper's machine.
package hpcsched_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"hpcsched/internal/core"
	"hpcsched/internal/experiments"
	"hpcsched/internal/gang"
	"hpcsched/internal/noise"
	"hpcsched/internal/power5"
	"hpcsched/internal/sched"
	"hpcsched/internal/sim"
	"hpcsched/internal/trace"
)

// baselines caches baseline execution times per workload (benchmarks run
// serially, so a plain map suffices).
var baselines = map[string]float64{}

func baselineSeconds(workload string) float64 {
	if v, ok := baselines[workload]; ok {
		return v
	}
	r := experiments.Run(experiments.Config{
		Workload: workload, Mode: experiments.ModeBaseline, Seed: 42,
	})
	baselines[workload] = r.ExecTime.Seconds()
	return baselines[workload]
}

// benchRun executes cfg b.N times and reports simulated seconds and the
// improvement over the workload baseline.
func benchRun(b *testing.B, cfg experiments.Config) {
	b.Helper()
	base := baselineSeconds(cfg.Workload)
	var last experiments.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = experiments.Run(cfg)
	}
	b.StopTimer()
	sims := last.ExecTime.Seconds()
	b.ReportMetric(sims, "sim_s")
	if cfg.Mode != experiments.ModeBaseline {
		b.ReportMetric(100*(1-sims/base), "improve_%")
	}
	b.ReportMetric(last.Imbalance, "imbalance")
}

// ---------------------------------------------------------------------------
// Table I — the hardware decode model itself
// ---------------------------------------------------------------------------

func BenchmarkTableI_DecodeCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for d := 0; d <= 4; d++ {
			a := power5.PrioLow + power5.Priority(d)
			r, ca, cb := power5.DecodeWindow(a, power5.PrioLow)
			if r != ca+cb {
				b.Fatal("decode table inconsistent")
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Table III / Figure 3 — MetBench
// ---------------------------------------------------------------------------

func BenchmarkTableIII_MetBench_Baseline(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "metbench", Mode: experiments.ModeBaseline, Seed: 42})
}

func BenchmarkTableIII_MetBench_Static(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "metbench", Mode: experiments.ModeStatic, Seed: 42})
}

func BenchmarkTableIII_MetBench_Uniform(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "metbench", Mode: experiments.ModeUniform, Seed: 42})
}

func BenchmarkTableIII_MetBench_Adaptive(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "metbench", Mode: experiments.ModeAdaptive, Seed: 42})
}

func BenchmarkFigure3_MetBenchTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Run(experiments.Config{
			Workload: "metbench", Mode: experiments.ModeUniform, Seed: 42, Trace: true,
		})
		out := r.Recorder.Render(trace.RenderOptions{Width: 100})
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// ---------------------------------------------------------------------------
// Table IV / Figure 4 — MetBenchVar
// ---------------------------------------------------------------------------

func BenchmarkTableIV_MetBenchVar_Baseline(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "metbenchvar", Mode: experiments.ModeBaseline, Seed: 42})
}

func BenchmarkTableIV_MetBenchVar_Static(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "metbenchvar", Mode: experiments.ModeStatic, Seed: 42})
}

func BenchmarkTableIV_MetBenchVar_Uniform(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "metbenchvar", Mode: experiments.ModeUniform, Seed: 42})
}

func BenchmarkTableIV_MetBenchVar_Adaptive(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "metbenchvar", Mode: experiments.ModeAdaptive, Seed: 42})
}

func BenchmarkFigure4_MetBenchVarTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Run(experiments.Config{
			Workload: "metbenchvar", Mode: experiments.ModeAdaptive, Seed: 42, Trace: true,
		})
		out := r.Recorder.Render(trace.RenderOptions{Width: 100, Prios: true})
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// ---------------------------------------------------------------------------
// Table V / Figure 5 — BT-MZ
// ---------------------------------------------------------------------------

func BenchmarkTableV_BTMZ_Baseline(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "btmz", Mode: experiments.ModeBaseline, Seed: 42})
}

func BenchmarkTableV_BTMZ_Static(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "btmz", Mode: experiments.ModeStatic, Seed: 42})
}

func BenchmarkTableV_BTMZ_Uniform(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "btmz", Mode: experiments.ModeUniform, Seed: 42})
}

func BenchmarkTableV_BTMZ_Adaptive(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "btmz", Mode: experiments.ModeAdaptive, Seed: 42})
}

func BenchmarkFigure5_BTMZTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Run(experiments.Config{
			Workload: "btmz", Mode: experiments.ModeUniform, Seed: 42, Trace: true,
		})
		out := r.Recorder.Render(trace.RenderOptions{Width: 100})
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// ---------------------------------------------------------------------------
// Table VI / Figure 6 — SIESTA
// ---------------------------------------------------------------------------

func BenchmarkTableVI_SIESTA_Baseline(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "siesta", Mode: experiments.ModeBaseline, Seed: 42})
}

func BenchmarkTableVI_SIESTA_Uniform(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "siesta", Mode: experiments.ModeUniform, Seed: 42})
}

func BenchmarkTableVI_SIESTA_Adaptive(b *testing.B) {
	benchRun(b, experiments.Config{Workload: "siesta", Mode: experiments.ModeAdaptive, Seed: 42})
}

func BenchmarkFigure6_SIESTATraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Run(experiments.Config{
			Workload: "siesta", Mode: experiments.ModeUniform, Seed: 42, Trace: true,
		})
		out := r.Recorder.Render(trace.RenderOptions{Width: 100})
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (§IV design choices)
// ---------------------------------------------------------------------------

// BenchmarkAblationPriorityRange varies the explored priority range: the
// paper limits it to [4,6] because differences beyond ±2 starve the
// unfavoured task.
func BenchmarkAblationPriorityRange(b *testing.B) {
	for _, rng := range [][2]power5.Priority{{4, 5}, {4, 6}, {3, 6}, {2, 6}, {1, 6}} {
		rng := rng
		b.Run(fmt.Sprintf("range_%d_%d", rng[0], rng[1]), func(b *testing.B) {
			p := core.DefaultParams()
			p.MinPrio, p.MaxPrio = rng[0], rng[1]
			benchRun(b, experiments.Config{Workload: "metbench",
				Mode: experiments.ModeUniform, Seed: 42, Params: p})
		})
	}
}

// BenchmarkAblationAdaptiveGL sweeps the Adaptive history weights.
func BenchmarkAblationAdaptiveGL(b *testing.B) {
	for _, l := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		l := l
		b.Run(fmt.Sprintf("L_%02.0f", l*100), func(b *testing.B) {
			p := core.DefaultParams()
			p.L, p.G = l, 1-l
			benchRun(b, experiments.Config{Workload: "metbenchvar",
				Mode: experiments.ModeAdaptive, Seed: 42, Params: p})
		})
	}
}

// BenchmarkAblationThresholds sweeps the utilization band.
func BenchmarkAblationThresholds(b *testing.B) {
	for _, th := range [][2]float64{{50, 70}, {65, 85}, {75, 95}} {
		th := th
		b.Run(fmt.Sprintf("low%g_high%g", th[0], th[1]), func(b *testing.B) {
			p := core.DefaultParams()
			p.LowUtil, p.HighUtil = th[0], th[1]
			benchRun(b, experiments.Config{Workload: "metbench",
				Mode: experiments.ModeUniform, Seed: 42, Params: p})
		})
	}
}

// BenchmarkAblationPolicy compares the FIFO and RR queue disciplines of
// the HPC class (the paper observes no difference with one task per CPU).
func BenchmarkAblationPolicy(b *testing.B) {
	for _, d := range []core.Discipline{core.DisciplineRR, core.DisciplineFIFO} {
		d := d
		b.Run(d.String(), func(b *testing.B) {
			benchRun(b, experiments.Config{Workload: "metbench",
				Mode: experiments.ModeUniform, Seed: 42, Discipline: d})
		})
	}
}

// BenchmarkAblationLatencyOnly runs the HPC class with the priority
// mechanism disabled: the scheduling-policy contribution in isolation.
func BenchmarkAblationLatencyOnly(b *testing.B) {
	for _, wl := range []string{"metbench", "siesta"} {
		wl := wl
		b.Run(wl, func(b *testing.B) {
			benchRun(b, experiments.Config{Workload: wl,
				Mode: experiments.ModeHPCOnly, Seed: 42})
		})
	}
}

// BenchmarkAblationNoise sweeps the OS noise level; the HPC class's
// advantage grows with the noise (class-order protection).
func BenchmarkAblationNoise(b *testing.B) {
	for _, duty := range []float64{0.0025, 0.01, 0.02} {
		duty := duty
		b.Run(fmt.Sprintf("duty_%.2f%%", duty*100), func(b *testing.B) {
			nz := noise.DefaultConfig()
			nz.Duty = duty
			base := experiments.Run(experiments.Config{Workload: "metbench",
				Mode: experiments.ModeBaseline, Seed: 42, Noise: &nz})
			var last experiments.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last = experiments.Run(experiments.Config{Workload: "metbench",
					Mode: experiments.ModeUniform, Seed: 42, Noise: &nz})
			}
			b.StopTimer()
			b.ReportMetric(last.ExecTime.Seconds(), "sim_s")
			b.ReportMetric(100*(1-last.ExecTime.Seconds()/base.ExecTime.Seconds()), "improve_%")
		})
	}
}

// BenchmarkAblationPerfModel swaps the calibrated chip model for the
// naive decode-proportional one and for the cache-QoS extension (the
// §I "control the cache too" argument): the QoS chip should extract a
// larger balancing gain.
func BenchmarkAblationPerfModel(b *testing.B) {
	models := []struct {
		name string
		pm   power5.PerfModel
	}{
		{"calibrated", power5.NewCalibratedPerfModel()},
		{"decode-proportional", power5.NewDecodeProportionalPerfModel()},
		{"cache-qos", power5.NewQoSPerfModel()},
	}
	for _, m := range models {
		m := m
		b.Run(m.name, func(b *testing.B) {
			base := experiments.Run(experiments.Config{Workload: "metbench",
				Mode: experiments.ModeBaseline, Seed: 42, PerfModel: m.pm})
			var last experiments.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last = experiments.Run(experiments.Config{Workload: "metbench",
					Mode: experiments.ModeUniform, Seed: 42, PerfModel: m.pm})
			}
			b.StopTimer()
			b.ReportMetric(last.ExecTime.Seconds(), "sim_s")
			b.ReportMetric(100*(1-last.ExecTime.Seconds()/base.ExecTime.Seconds()), "improve_%")
		})
	}
}

// BenchmarkAblationSnooze enables the POWER5 smt_snooze_delay (idle
// contexts drop to priority 1): the baseline speeds up a little because
// the big workers run beside snoozing — instead of idle-spinning —
// contexts while the small workers wait, shrinking the balancing
// headroom.
func BenchmarkAblationSnooze(b *testing.B) {
	for _, snooze := range []sim.Time{0, 100 * sim.Microsecond} {
		snooze := snooze
		name := "off"
		if snooze > 0 {
			name = "100us"
		}
		b.Run(name, func(b *testing.B) {
			opts := sched.DefaultOptions()
			opts.SMTSnoozeDelay = snooze
			base := experiments.Run(experiments.Config{Workload: "metbench",
				Mode: experiments.ModeBaseline, Seed: 42, KernelOpts: opts})
			var last experiments.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last = experiments.Run(experiments.Config{Workload: "metbench",
					Mode: experiments.ModeUniform, Seed: 42, KernelOpts: opts})
			}
			b.StopTimer()
			b.ReportMetric(base.ExecTime.Seconds(), "base_sim_s")
			b.ReportMetric(last.ExecTime.Seconds(), "sim_s")
			b.ReportMetric(100*(1-last.ExecTime.Seconds()/base.ExecTime.Seconds()), "improve_%")
		})
	}
}

// BenchmarkAblationHybrid runs the future-work hybrid heuristic on both a
// constant and a dynamic application.
func BenchmarkAblationHybrid(b *testing.B) {
	for _, wl := range []string{"metbench", "metbenchvar"} {
		wl := wl
		b.Run(wl, func(b *testing.B) {
			benchRun(b, experiments.Config{Workload: wl,
				Mode: experiments.ModeHybrid, Seed: 42})
		})
	}
}

// ---------------------------------------------------------------------------
// Batch layer — parallel table reproduction
// ---------------------------------------------------------------------------

// BenchmarkBatchReproduceTable reproduces Table III over 8 replication
// seeds at increasing worker counts. Simulations are embarrassingly
// parallel, so ns/op should fall near-linearly from the workers_1
// sub-benchmark up to the core count; the aggregates are byte-identical
// at every width (the batch determinism contract).
func BenchmarkBatchReproduceTable(b *testing.B) {
	seeds := experiments.SeedsFrom(42, 8)
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		w := w
		b.Run(fmt.Sprintf("workers_%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sr, err := experiments.RunScenario(context.Background(), experiments.ScenarioSpec{
					Workload: "metbench", Seeds: seeds,
					Modes: experiments.TableModes("metbench"),
					Exec:  experiments.ExecOptions{Workers: w},
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = experiments.TableStatsOf(sr)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Gang scheduling (the paper's §VI future work, implemented)
// ---------------------------------------------------------------------------

// BenchmarkGangScheduling compares the placement strategies on the 2-node
// cluster: block (naive), round-robin and the LPT gang scheduler, each
// with per-node HPCSched balancing.
func BenchmarkGangScheduling(b *testing.B) {
	job := gang.DefaultJob()
	cfg := gang.Config{Nodes: 2, Seed: 42, HPC: gang.HPCConfigForCluster()}
	for _, p := range []gang.Placer{gang.BlockPlacer{}, gang.RoundRobinPlacer{}, gang.LPTPlacer{}} {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			var last gang.ExperimentResult
			for i := 0; i < b.N; i++ {
				last = gang.RunExperiment(cfg, job, p)
			}
			b.ReportMetric(last.ExecTime.Seconds(), "sim_s")
			b.ReportMetric(last.MaxLoad, "max_node_load")
		})
	}
}
