package hpcsched_test

import (
	"strings"
	"testing"

	"hpcsched"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	rec := hpcsched.NewRecorder()
	m := hpcsched.NewMachine(hpcsched.MachineConfig{
		Seed:   1,
		HPC:    &hpcsched.HPCConfig{Heuristic: hpcsched.Uniform},
		Tracer: rec,
	})
	if m.HPC == nil || m.Kernel == nil || m.Chip == nil {
		t.Fatal("machine incomplete")
	}
	w := m.NewWorld(2)
	for i := 0; i < 2; i++ {
		i := i
		w.Spawn(i, hpcsched.TaskSpec{Policy: hpcsched.PolicyHPC, Affinity: 1 << uint(i)},
			func(r *hpcsched.Rank) {
				for it := 0; it < 6; it++ {
					if i == 0 {
						r.Compute(20 * hpcsched.Millisecond)
						r.Recv(1, it)
						r.Send(1, it, 64)
					} else {
						r.Compute(80 * hpcsched.Millisecond)
						r.Send(0, it, 64)
						r.Recv(0, it)
					}
				}
			})
	}
	end := m.Run(30 * hpcsched.Second)
	if end >= 30*hpcsched.Second {
		t.Fatal("job did not finish")
	}
	sums := hpcsched.Summaries(w.Tasks(), end)
	if len(sums) != 2 {
		t.Fatal("summaries missing")
	}
	if sums[1].HWPrio != int(hpcsched.PrioHigh) {
		t.Errorf("heavy rank priority = %d, want 6", sums[1].HWPrio)
	}
	rec.Finish(end)
	if out := rec.Render(hpcsched.RenderOptions{Width: 60}); !strings.Contains(out, "#") {
		t.Error("trace render empty")
	}
}

func TestFacadeDefaults(t *testing.T) {
	m := hpcsched.NewMachine(hpcsched.MachineConfig{Seed: 2})
	if m.HPC != nil {
		t.Error("HPC class installed without being requested")
	}
	if m.Chip.NumCPUs() != 4 {
		t.Errorf("default machine has %d CPUs, want 4", m.Chip.NumCPUs())
	}
	if got := len(m.Kernel.Classes()); got != 3 {
		t.Errorf("default class count = %d, want 3 (rt, fair, idle)", got)
	}
	p := hpcsched.DefaultHPCParams()
	if p.HighUtil != 85 || p.LowUtil != 65 || p.MinPrio != 4 || p.MaxPrio != 6 {
		t.Errorf("default params drifted: %+v", p)
	}
}

func TestFacadeSilentNoise(t *testing.T) {
	m := hpcsched.NewMachine(hpcsched.MachineConfig{Seed: 3, Noise: &hpcsched.SilentNoise})
	w := m.NewWorld(1)
	w.Spawn(0, hpcsched.TaskSpec{}, func(r *hpcsched.Rank) {
		r.Compute(10 * hpcsched.Millisecond)
	})
	end := m.Run(hpcsched.Second)
	// No daemons: only the rank ever runs.
	if got := len(m.Kernel.Tasks()); got != 1 {
		t.Errorf("task count = %d with silent noise, want 1", got)
	}
	if end >= hpcsched.Second {
		t.Error("run did not complete")
	}
}

func TestFacadeHeuristicsExported(t *testing.T) {
	for _, h := range []hpcsched.Heuristic{hpcsched.Uniform, hpcsched.Adaptive,
		hpcsched.Hybrid, hpcsched.Fixed} {
		if h.Name() == "" {
			t.Error("heuristic without name")
		}
	}
	if len(hpcsched.Workloads()) != 5 {
		t.Errorf("Workloads() = %v", hpcsched.Workloads())
	}
}

func TestFacadeReproduceTable(t *testing.T) {
	tr := hpcsched.ReproduceTable("metbench", 42)
	if len(tr.Rows) != 4 {
		t.Fatalf("rows = %d", len(tr.Rows))
	}
	if imp := tr.ImprovementOf(hpcsched.ModeUniform); imp < 0.08 {
		t.Errorf("uniform improvement = %v, want ≥8%%", imp)
	}
	if !strings.Contains(tr.Format(), "Uniform") {
		t.Error("Format output malformed")
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	r := hpcsched.RunExperiment(hpcsched.ExperimentConfig{
		Workload: "siesta", Mode: hpcsched.ModeHPCOnly, Seed: 42,
	})
	if r.ExecTime <= 0 || len(r.Summaries) != 4 {
		t.Fatalf("experiment malformed: %v, %d summaries", r.ExecTime, len(r.Summaries))
	}
	if r.HPC == nil {
		t.Fatal("HPC class missing from HPC-mode result")
	}
}

func TestFacadeCustomCores(t *testing.T) {
	m := hpcsched.NewMachine(hpcsched.MachineConfig{Seed: 4, Cores: 4})
	if m.Chip.NumCPUs() != 8 {
		t.Errorf("4-core machine has %d CPUs", m.Chip.NumCPUs())
	}
	w := m.NewWorld(8)
	for i := 0; i < 8; i++ {
		w.Spawn(i, hpcsched.TaskSpec{}, func(r *hpcsched.Rank) {
			r.Compute(20 * hpcsched.Millisecond)
			r.Barrier()
		})
	}
	if end := m.Run(10 * hpcsched.Second); end >= 10*hpcsched.Second {
		t.Fatal("8-rank job deadlocked on the 8-CPU machine")
	}
}
