package hpcsched_test

import (
	"context"
	"fmt"

	"hpcsched"
	"hpcsched/internal/power5"
)

// ExampleRun regenerates the paper's Table III from one ScenarioSpec and
// reads the Uniform heuristic's improvement out of it.
func ExampleRun() {
	sr, err := hpcsched.Run(context.Background(), hpcsched.ScenarioSpec{
		Workload: "metbench", Seed: 42, Modes: hpcsched.TableModes("metbench"),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	tr := hpcsched.TableResult{Workload: "metbench", Rows: sr.Results}
	imp := tr.ImprovementOf(hpcsched.ModeUniform)
	fmt.Printf("Uniform improves MetBench by more than 10%%: %v\n", imp > 0.10)
	// Output:
	// Uniform improves MetBench by more than 10%: true
}

// ExampleNewMachine builds a machine with the HPC class, runs a trivially
// imbalanced 2-rank job and reports the final hardware priorities.
func ExampleNewMachine() {
	m := hpcsched.NewMachine(hpcsched.MachineConfig{
		Seed:  7,
		HPC:   &hpcsched.HPCConfig{Heuristic: hpcsched.Uniform},
		Noise: &hpcsched.SilentNoise,
	})
	w := m.NewWorld(2)
	for i := 0; i < 2; i++ {
		i := i
		w.Spawn(i, hpcsched.TaskSpec{Policy: hpcsched.PolicyHPC, Affinity: 1 << uint(i)},
			func(r *hpcsched.Rank) {
				for it := 0; it < 8; it++ {
					if i == 0 {
						r.Compute(10 * hpcsched.Millisecond)
						r.Recv(1, it)
						r.Send(1, it, 64)
					} else {
						r.Compute(60 * hpcsched.Millisecond)
						r.Send(0, it, 64)
						r.Recv(0, it)
					}
				}
			})
	}
	end := m.Run(10 * hpcsched.Second)
	for _, s := range hpcsched.Summaries(w.Tasks(), end) {
		fmt.Printf("%s: hw priority %d\n", s.Name, s.HWPrio)
	}
	// Output:
	// P1: hw priority 4
	// P2: hw priority 6
}

// ExampleSweep fans a replicated two-scenario comparison out on one
// shared worker pool and reads the per-scenario results back. Same grid,
// same output at any worker count — the pool's determinism contract — so
// replicated evaluations are safe to parallelize.
func ExampleSweep() {
	grid := []hpcsched.ScenarioSpec{
		{Workload: "metbench", Mode: hpcsched.ModeBaseline, Seed: 42, Replicas: 2},
		{Workload: "metbench", Mode: hpcsched.ModeUniform, Seed: 42, Replicas: 2},
	}
	srs, err := hpcsched.Sweep(context.Background(), grid, hpcsched.ExecOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	base, uni := srs[0].Results, srs[1].Results
	for i := range base {
		fmt.Printf("replica %d: uniform beats baseline: %v\n",
			i, uni[i].ExecTime < base[i].ExecTime)
	}
	// Output:
	// replica 0: uniform beats baseline: true
	// replica 1: uniform beats baseline: true
}

// ExampleDecodeWindow shows the paper's Table I arbitration for the worked
// 6-vs-2 example of §II-B.
func ExampleDecodeWindow() {
	r, a, b := power5.DecodeWindow(power5.PrioHigh, power5.PrioLow)
	fmt.Printf("window R=%d: %d decode cycles vs %d\n", r, a, b)
	// Output:
	// window R=32: 31 decode cycles vs 1
}
